"""The performance ledger: persistent benchmark artifacts and diffs.

The searches this repo reproduces have Ackermannian worst cases, so
"fast as the hardware allows" is meaningless without a longitudinal
record: which commit made the Karp–Miller loop 2× slower, which one
doubled the Pottier completion's memory.  The ledger turns one run of
the workload registry (:mod:`repro.obs.bench`) into a schema-versioned
JSON artifact and compares any two artifacts with robust change
detection.

Measurement protocol, per workload:

1. **Timing passes** — ``repeats`` runs under the *null* tracer (the
   production configuration), reduced to median and MAD.  Median/MAD
   rather than mean/stddev because shared runners produce heavy-tailed
   timing noise; a single descheduling event must not poison the
   artifact.
2. **One instrumented pass** — under a live (exporter-less) tracer
   with ``tracemalloc`` running: captures the deterministic work
   counts (both the workload's own return dict and the span counters
   folded into the metrics registry), the tracemalloc **peak** over
   the run, and the net allocation delta.  This pass is never timed —
   tracemalloc costs an order of magnitude on allocation-heavy code,
   which is exactly why memory observation is a separate pass (and
   off by default in the tracer itself).

Comparison semantics (:func:`compare_artifacts`):

* **work counts** — exact: any drift is a finding.  Wall clock on CI
  is noise; ``nodes expanded`` is not.
* **time** — a regression needs *both* a relative excess over the
  threshold *and* a robust-significance excess (the median delta must
  exceed ``3 * (MAD_a + MAD_b)`` plus an absolute floor), so MAD-sized
  jitter on a quiet workload never fires.
* **memory** — same rule against the tracemalloc peaks, with a
  coarser default threshold (allocator layout shifts between Python
  versions).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .bench import Workload, iter_workloads
from .metrics import clear_registry, registry_snapshot
from .progress import progress
from .tracer import NULL_TRACER, Tracer, set_tracer

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_KIND",
    "LedgerError",
    "run_suite",
    "write_artifact",
    "load_artifact",
    "environment_fingerprint",
    "Finding",
    "ComparisonReport",
    "compare_artifacts",
    "DEFAULT_BASELINE_PATH",
]

SCHEMA_VERSION = 1
ARTIFACT_KIND = "repro-bench-ledger"

# The committed seed baseline CI compares against (repo-relative).
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "baselines", "BENCH_seed.json")


class LedgerError(ValueError):
    """Malformed, missing, or schema-incompatible ledger artifact."""


# ----------------------------------------------------------------------
# Running a suite
# ----------------------------------------------------------------------


def environment_fingerprint(jobs: int) -> Dict[str, Any]:
    """Where and how this artifact was produced (stored verbatim)."""
    try:
        sha = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "git_sha": sha,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
    }


def _median_mad(samples: Sequence[float]) -> Dict[str, float]:
    median = statistics.median(samples)
    mad = statistics.median(abs(s - median) for s in samples)
    return {"median_s": median, "mad_s": mad}


def _measure_workload(
    workload: Workload, *, repeats: int, jobs: int, memory: bool
) -> Dict[str, Any]:
    """The two-pass measurement protocol for one workload.

    Runs under ``cache_disabled()`` so the ambient analysis cache never
    contaminates timings or work counts; the ``cache.*`` workloads
    re-enable a store of their own inside the run, which nests cleanly.
    """
    # Imported here, not at module level: repro.cache imports the obs
    # metrics registry, so the obs package must not import cache eagerly.
    from ..cache.store import cache_disabled

    with cache_disabled():
        return _measure_workload_uncached(
            workload, repeats=repeats, jobs=jobs, memory=memory
        )


def _measure_workload_uncached(
    workload: Workload, *, repeats: int, jobs: int, memory: bool
) -> Dict[str, Any]:
    # Warm-up (imports, caches) — never recorded.
    workload.run(jobs=jobs)

    # Timing passes: force the null tracer so we time the production
    # configuration even when the surrounding CLI run is being traced.
    previous = set_tracer(NULL_TRACER)
    times: List[float] = []
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            workload.run(jobs=jobs)
            times.append(time.perf_counter() - start)
    finally:
        set_tracer(previous)

    # Instrumented pass: work counts + memory, never timed.
    clear_registry()
    tracer = Tracer()
    set_tracer(tracer)
    started_tracemalloc = False
    peak_kb: Optional[float] = None
    net_kb: Optional[float] = None
    try:
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracemalloc = True
        if memory:
            base_current, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
        work = dict(workload.run(jobs=jobs))
        if memory:
            current, peak = tracemalloc.get_traced_memory()
            peak_kb = round((peak - base_current) / 1024.0, 1)
            net_kb = round((current - base_current) / 1024.0, 1)
    finally:
        tracer.close()
        set_tracer(previous)
        if started_tracemalloc:
            tracemalloc.stop()

    # Span counters recorded inside the pipelines (nodes expanded,
    # Pottier frontier vectors, saturation rounds) are deterministic
    # work counts too; fold them in under their span-qualified names.
    spans = registry_snapshot().get("spans")
    if spans is not None:
        for name, value in spans.counters.items():
            work.setdefault(name, int(value))
    clear_registry()

    entry: Dict[str, Any] = {
        "repeats": repeats,
        "times_s": [round(t, 6) for t in times],
        **{k: round(v, 6) for k, v in _median_mad(times).items()},
        "peak_kb": peak_kb,
        "net_kb": net_kb,
        "work": work,
    }
    return entry


def run_suite(
    suite: str = "micro",
    *,
    repeats: int = 5,
    jobs: int = 1,
    memory: bool = True,
    progress_label: str = "bench",
    workload_filter: Optional[Callable[[Workload], bool]] = None,
) -> Dict[str, Any]:
    """Run every workload in ``suite``; returns the artifact dict."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    workloads = iter_workloads(suite)
    if workload_filter is not None:
        workloads = [w for w in workloads if workload_filter(w)]
    if not workloads:
        raise LedgerError(f"suite {suite!r} selected no workloads")
    done = 0
    meter = progress(
        progress_label, lambda: {"workloads_done": done, "workloads": len(workloads)}
    )
    results: Dict[str, Any] = {}
    for workload in workloads:
        results[workload.name] = _measure_workload(
            workload, repeats=repeats, jobs=jobs, memory=memory
        )
        results[workload.name]["description"] = workload.description
        done += 1
        meter.tick()
    meter.finish()
    return {
        "kind": ARTIFACT_KIND,
        "schema": SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "suite": suite,
        "repeats": repeats,
        "memory": memory,
        "env": environment_fingerprint(jobs),
        "workloads": results,
    }


def write_artifact(path: str, artifact: Mapping[str, Any]) -> None:
    """Serialise an artifact as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    """Read and schema-check one ``BENCH_*.json`` artifact."""
    try:
        with open(path) as handle:
            artifact = json.load(handle)
    except OSError as error:
        raise LedgerError(f"cannot read artifact {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise LedgerError(f"artifact {path!r} is not valid JSON: {error}")
    if not isinstance(artifact, dict) or artifact.get("kind") != ARTIFACT_KIND:
        raise LedgerError(
            f"artifact {path!r} is not a {ARTIFACT_KIND} artifact"
        )
    if artifact.get("schema") != SCHEMA_VERSION:
        raise LedgerError(
            f"artifact {path!r} has schema {artifact.get('schema')!r}, "
            f"this build reads schema {SCHEMA_VERSION}"
        )
    if not isinstance(artifact.get("workloads"), dict):
        raise LedgerError(f"artifact {path!r} has no workloads table")
    return artifact


# ----------------------------------------------------------------------
# Comparing two artifacts
# ----------------------------------------------------------------------

# A median delta below this is never significant, whatever the ratio —
# sub-millisecond workloads jitter by full multiples on shared runners.
_TIME_FLOOR_S = 0.002
_MEMORY_FLOOR_KB = 256.0
_MAD_SIGMA = 3.0


@dataclass(frozen=True)
class Finding:
    """One detected change between two artifacts."""

    workload: str
    kind: str  # "time" | "memory" | "work" | "missing" | "added"
    detail: str
    regression: bool  # False for improvements / informational findings

    def render(self) -> str:
        tag = "REGRESSION" if self.regression else "note"
        return f"[{tag}] {self.workload}: {self.detail}"


@dataclass
class ComparisonReport:
    """Everything ``repro bench compare`` prints and gates on."""

    base_path: str
    new_path: str
    findings: List[Finding] = field(default_factory=list)
    rows: List[List[str]] = field(default_factory=list)

    def regressions(self, kinds: Optional[Sequence[str]] = None) -> List[Finding]:
        """Regression findings, optionally restricted to some kinds."""
        return [
            f
            for f in self.findings
            if f.regression and (kinds is None or f.kind in kinds)
        ]

    def ok(self, fail_on: str = "any") -> bool:
        """Gate: ``any`` fails on every regression kind; ``work`` only
        on exact-work drift and missing workloads (the CI shared-runner
        policy, where wall clock is advisory)."""
        if fail_on == "any":
            return not self.regressions()
        if fail_on == "work":
            return not self.regressions(kinds=("work", "missing"))
        raise ValueError(f"fail_on must be 'any' or 'work', got {fail_on!r}")

    def render(self) -> str:
        from ..fmt import render_table

        table = render_table(
            ["workload", "base", "new", "Δ time", "base peak", "new peak", "verdict"],
            self.rows,
        )
        lines = [f"base: {self.base_path}", f"new:  {self.new_path}", "", table]
        if self.findings:
            lines.append("")
            lines.extend(f.render() for f in self.findings)
        else:
            lines.append("\nno significant changes detected")
        return "\n".join(lines)


def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.3f}s"


def _fmt_kb(kb: Optional[float]) -> str:
    if kb is None:
        return "-"
    if kb >= 1024:
        return f"{kb / 1024:.1f}MB"
    return f"{kb:.0f}KB"


def _significant(
    base: float,
    new: float,
    base_mad: float,
    new_mad: float,
    *,
    threshold: float,
    floor: float,
) -> bool:
    """The robust two-condition change test (see module docstring)."""
    delta = new - base
    if delta <= max(floor, threshold * base):
        return False
    return delta > _MAD_SIGMA * (base_mad + new_mad) + floor


def compare_artifacts(
    base: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    time_threshold: float = 0.25,
    memory_threshold: float = 0.50,
    base_path: str = "<base>",
    new_path: str = "<new>",
) -> ComparisonReport:
    """Diff two loaded artifacts into a :class:`ComparisonReport`."""
    for label, artifact in (("base", base), ("new", new)):
        if artifact.get("schema") != SCHEMA_VERSION:
            raise LedgerError(
                f"{label} artifact has schema {artifact.get('schema')!r}, "
                f"expected {SCHEMA_VERSION}"
            )
    report = ComparisonReport(base_path=base_path, new_path=new_path)
    base_workloads: Dict[str, Any] = base["workloads"]
    new_workloads: Dict[str, Any] = new["workloads"]

    for name in sorted(set(base_workloads) | set(new_workloads)):
        if name not in new_workloads:
            report.findings.append(
                Finding(name, "missing", "workload present in base but not in new run", True)
            )
            continue
        if name not in base_workloads:
            report.findings.append(
                Finding(name, "added", "new workload (no baseline yet)", False)
            )
            continue
        entry_base, entry_new = base_workloads[name], new_workloads[name]
        verdicts: List[str] = []

        # Exact work counts: any drift on a shared key is a hard finding.
        work_base = entry_base.get("work", {})
        work_new = entry_new.get("work", {})
        drifted = {
            key: (work_base[key], work_new[key])
            for key in set(work_base) & set(work_new)
            if work_base[key] != work_new[key]
        }
        if drifted:
            detail = ", ".join(
                f"{key}: {old} -> {fresh}" for key, (old, fresh) in sorted(drifted.items())
            )
            report.findings.append(
                Finding(name, "work", f"work-count drift ({detail})", True)
            )
            verdicts.append("work drift")

        # Robust wall-clock comparison.
        t_base, t_new = entry_base["median_s"], entry_new["median_s"]
        mad_base = entry_base.get("mad_s", 0.0)
        mad_new = entry_new.get("mad_s", 0.0)
        if _significant(
            t_base, t_new, mad_base, mad_new,
            threshold=time_threshold, floor=_TIME_FLOOR_S,
        ):
            report.findings.append(
                Finding(
                    name,
                    "time",
                    f"median {_fmt_time(t_base)} -> {_fmt_time(t_new)} "
                    f"({t_new / t_base:.2f}x, threshold {1 + time_threshold:.2f}x)",
                    True,
                )
            )
            verdicts.append(f"time {t_new / t_base:.2f}x")
        elif _significant(
            t_new, t_base, mad_new, mad_base,
            threshold=time_threshold, floor=_TIME_FLOOR_S,
        ):
            report.findings.append(
                Finding(
                    name,
                    "time",
                    f"improved: median {_fmt_time(t_base)} -> {_fmt_time(t_new)} "
                    f"({t_base / t_new:.2f}x faster)",
                    False,
                )
            )
            verdicts.append("faster")

        # Memory peaks, when both artifacts carried the memory pass.
        m_base, m_new = entry_base.get("peak_kb"), entry_new.get("peak_kb")
        if m_base is not None and m_new is not None:
            if _significant(
                m_base, m_new, 0.0, 0.0,
                threshold=memory_threshold, floor=_MEMORY_FLOOR_KB,
            ):
                report.findings.append(
                    Finding(
                        name,
                        "memory",
                        f"peak {_fmt_kb(m_base)} -> {_fmt_kb(m_new)} "
                        f"({m_new / max(m_base, 1e-9):.2f}x)",
                        True,
                    )
                )
                verdicts.append("memory")

        delta_pct = (t_new / t_base - 1.0) * 100 if t_base > 0 else 0.0
        report.rows.append(
            [
                name,
                _fmt_time(t_base),
                _fmt_time(t_new),
                f"{delta_pct:+.1f}%",
                _fmt_kb(m_base),
                _fmt_kb(m_new),
                "; ".join(verdicts) or "ok",
            ]
        )
    return report
