"""Reachability substrates: exact graphs, coverability, pseudo-reachability."""

from .coverability import (
    OMEGA,
    KarpMillerTree,
    backward_coverability_basis,
    is_coverable_from,
    karp_miller,
    minimal_coverers,
)
from .graph import ReachabilityGraph, count_configurations, enumerate_configurations
from .state_equation import (
    refute_reachability,
    state_equation_solutions,
    state_equation_solvable,
    t_invariants,
)
from .pseudo import (
    RealisableBasisElement,
    input_state,
    is_potentially_realisable,
    minimal_input_for,
    realisability_matrix,
    realisable_basis,
    witness_configuration,
)

__all__ = [
    "ReachabilityGraph",
    "enumerate_configurations",
    "count_configurations",
    "OMEGA",
    "KarpMillerTree",
    "karp_miller",
    "is_coverable_from",
    "backward_coverability_basis",
    "minimal_coverers",
    "input_state",
    "realisability_matrix",
    "is_potentially_realisable",
    "minimal_input_for",
    "witness_configuration",
    "realisable_basis",
    "RealisableBasisElement",
    "state_equation_solutions",
    "state_equation_solvable",
    "refute_reachability",
    "t_invariants",
]
