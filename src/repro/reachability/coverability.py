"""Coverability: Karp–Miller trees and backward analysis.

A population protocol is a Petri net with one place per state and, for
each transition ``p, q -> p', q'``, a net transition consuming
``<p, q>`` and producing ``<p', q'>``.  Questions of the form "can a
configuration covering ``m`` be reached?" are *coverability* questions,
for which two classical complete procedures exist:

* the **Karp–Miller tree** with omega-acceleration, which computes the
  downward closure of the reachability set of a single initial
  configuration (here: of a single initial *family*, since initial
  configurations are parameterised by the input); and
* **backward coverability**, which saturates the upward-closed set of
  configurations that can cover a target, represented by its finite
  set of minimal elements.

The paper uses coverability through Rackoff's theorem (in the proof of
Lemma 3.2): if some configuration covering a state ``q`` is reachable
from ``C'``, then one is reachable by a sequence of length at most
``2^(2(2n+1)!)``.  The procedures here make such covering sequences
constructive on concrete protocols; the astronomically larger Rackoff
*bound* itself lives in :mod:`repro.bounds.constants`.

Omega entries are represented by ``math.inf``; extended configurations
are tuples mixing ints and ``inf``.

Both procedures run on the sharded frontier engine of
:mod:`repro.reachability.frontier`: ``jobs`` fans expansion out across
the process pool with task-order merging (bit-identical results at any
width), ``quotient`` prunes automorphic duplicates while preserving the
limit antichain exactly, and ``checkpoint_interval`` makes long runs
resumable through the content-addressed cache — see the engine module
for the soundness arguments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..cache.decorator import cached_analysis
from ..core.errors import SearchBudgetExceeded
from ..core.multiset import Multiset
from ..core.protocol import IndexedProtocol, PopulationProtocol
from ..obs import get_tracer, progress
from ..parallel import run_tasks
from ..parallel.pool import chunk_ranges, default_chunk_size, worker_pool
from .frontier import (
    OMEGA,
    ExtendedConfig,
    KarpMillerFrontier,
    Permutation,
    _leq,
    _transition_pre,
)

__all__ = [
    "OMEGA",
    "KarpMillerTree",
    "karp_miller",
    "is_coverable_from",
    "backward_coverability_basis",
    "minimal_coverers",
]

DEFAULT_NODE_BUDGET = 200_000


class KarpMillerTree:
    """The result of a Karp–Miller construction.

    Attributes
    ----------
    limits:
        The set of maximal extended configurations discovered.  Their
        downward closure equals the downward closure of the reachable
        set (restricted to the explored roots).  This is the unique
        minimal antichain of that closure, so it is identical whether
        or not the construction ran quotiented or sharded.
    nodes:
        Every extended configuration created during the construction.
        Under ``quotient=True`` this is the pruned exploration, a
        subset of the classic tree's node set.
    accelerations:
        For each node that gained an ω-component, the branch ancestors
        whose strict domination introduced it — the acceleration
        ancestry, preserved through the cache round-trip.
    group:
        The root-fixing automorphism permutations the construction
        quotiented by (just the identity when ``quotient=False``).
    """

    def __init__(
        self,
        indexed: IndexedProtocol,
        limits: Set[ExtendedConfig],
        nodes: Set[ExtendedConfig],
        accelerations: Optional[Dict[ExtendedConfig, Tuple[ExtendedConfig, ...]]] = None,
        group: Optional[Tuple[Permutation, ...]] = None,
        quotient: bool = False,
    ):
        self.indexed = indexed
        self.limits = limits
        self.nodes = nodes
        self.accelerations = {} if accelerations is None else accelerations
        self.group = (tuple(range(indexed.n)),) if group is None else group
        self.quotient = quotient

    def covers(self, target: Sequence[int]) -> bool:
        """Is some reachable configuration >= ``target`` (coverability)?"""
        target_t = tuple(target)
        return any(_leq(target_t, limit) for limit in self.limits)

    def place_bounded(self, state_index: int) -> bool:
        """Is the number of agents in the given state bounded?"""
        return all(limit[state_index] != OMEGA for limit in self.limits)

    def covers_multiset(self, target: Multiset) -> bool:
        """Coverability query with a multiset target over protocol states."""
        return self.covers(self.indexed.encode(target))


def karp_miller(
    protocol: PopulationProtocol,
    roots: Iterable[Sequence[Union[int, float]]],
    node_budget: int = DEFAULT_NODE_BUDGET,
    *,
    jobs: int = 1,
    quotient: bool = False,
    checkpoint_interval: Optional[int] = None,
) -> KarpMillerTree:
    """Build a Karp–Miller tree from the given roots.

    Roots may already contain :data:`OMEGA` entries; passing
    ``(OMEGA, 0, ..., 0)`` with omega on the input state analyses the
    protocol *for all inputs at once*, which is how the leaderless
    analyses in this package use it.

    ``jobs`` shards frontier expansion across the process pool;
    ``quotient`` dedups automorphic configurations; both leave the
    ``limits`` antichain and every coverability verdict bit-identical
    (the differential suite ``tests/test_coverability_sharded.py``
    enforces this).  ``checkpoint_interval`` writes a resumable partial
    tree into the active cache store every that-many expansions; a
    later identical call (any budget, any jobs) resumes from it.

    Results are memoised through :mod:`repro.cache` (content-addressed
    by protocol, roots, budget and quotient flag) when the active store
    is enabled; pre-indexed first arguments bypass the cache.

    Raises :class:`SearchBudgetExceeded` when more than ``node_budget``
    tree nodes are created.
    """
    # Materialise roots before the cached inner function keys on them
    # (callers may pass generators).
    return _karp_miller(
        protocol,
        [tuple(root) for root in roots],
        node_budget,
        jobs=jobs,
        quotient=quotient,
        checkpoint_interval=checkpoint_interval,
    )


def _km_encode_config(config: ExtendedConfig) -> List[Union[int, str]]:
    return ["w" if c == OMEGA else int(c) for c in config]


def _km_decode_config(row: Sequence[Union[int, str]]) -> ExtendedConfig:
    return tuple(OMEGA if c == "w" else int(c) for c in row)


def _km_params(arguments):
    # jobs and checkpoint_interval deliberately excluded: they are
    # execution strategy, not analysis identity — the differential
    # contract guarantees the result does not depend on them.
    return {
        "roots": [_km_encode_config(root) for root in arguments["roots"]],
        "node_budget": int(arguments["node_budget"]),
        "quotient": bool(arguments["quotient"]),
    }


def _km_encode(tree: KarpMillerTree, protocol: PopulationProtocol):
    return {
        "limits": [_km_encode_config(c) for c in sorted(tree.limits)],
        "nodes": [_km_encode_config(c) for c in sorted(tree.nodes)],
        "accelerations": [
            [_km_encode_config(node), [_km_encode_config(a) for a in used]]
            for node, used in sorted(tree.accelerations.items())
        ],
        "group": [list(perm) for perm in tree.group],
        "quotient": bool(tree.quotient),
    }


def _km_decode(payload, protocol: PopulationProtocol) -> KarpMillerTree:
    indexed = protocol.indexed()
    limits = {_km_decode_config(row) for row in payload["limits"]}
    nodes = {_km_decode_config(row) for row in payload["nodes"]}
    accelerations = {
        _km_decode_config(node): tuple(_km_decode_config(a) for a in used)
        for node, used in payload["accelerations"]
    }
    group = tuple(tuple(int(i) for i in perm) for perm in payload["group"])
    for config in limits | nodes:
        if len(config) != indexed.n:
            raise ValueError("configuration width does not match the protocol")
    return KarpMillerTree(
        indexed,
        limits,
        nodes,
        accelerations=accelerations,
        group=group,
        quotient=bool(payload["quotient"]),
    )


@cached_analysis(
    "coverability.karp_miller",
    params=_km_params,
    encode=_km_encode,
    decode=_km_decode,
)
def _karp_miller(
    protocol: PopulationProtocol,
    roots: List[ExtendedConfig],
    node_budget: int = DEFAULT_NODE_BUDGET,
    *,
    jobs: int = 1,
    quotient: bool = False,
    checkpoint_interval: Optional[int] = None,
) -> KarpMillerTree:
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    with get_tracer().span(
        "coverability.karp_miller",
        states=indexed.n,
        transitions=len(indexed.deltas),
        node_budget=node_budget,
        jobs=jobs,
        quotient=int(quotient),
    ) as span:
        engine = KarpMillerFrontier(
            indexed,
            roots,
            node_budget=node_budget,
            jobs=jobs,
            quotient=quotient,
            checkpoint_interval=checkpoint_interval,
        )
        try:
            result = engine.run()
        except SearchBudgetExceeded:
            span.add("budget_exceeded")
            if engine.stats.checkpoints_written:
                span.add("checkpoints", engine.stats.checkpoints_written)
            raise
        span.add("nodes", len(result.nodes))
        span.add("limits", len(result.limits))
        span.add("expansions", result.stats.expansions)
        if result.stats.dedup_hits:
            span.add("dedup_hits", result.stats.dedup_hits)
        if result.stats.checkpoints_written:
            span.add("checkpoints", result.stats.checkpoints_written)
        if result.stats.resumed:
            span.add("resumed")
            span.set(resumed_expansions=result.stats.resumed_expansions)
    return KarpMillerTree(
        indexed,
        result.limits,
        result.nodes,
        accelerations=result.accelerations,
        group=result.group,
        quotient=quotient,
    )


def is_coverable_from(
    protocol: PopulationProtocol,
    root: Sequence[Union[int, float]],
    target: Sequence[int],
    node_budget: int = DEFAULT_NODE_BUDGET,
    *,
    jobs: int = 1,
    quotient: bool = False,
) -> bool:
    """Coverability query: can ``root`` reach some ``C >= target``?"""
    tree = karp_miller(
        protocol, [root], node_budget=node_budget, jobs=jobs, quotient=quotient
    )
    return tree.covers(target)


def _minimise(vectors: Iterable[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Keep only the <=-minimal vectors of a finite collection."""
    vecs = list(dict.fromkeys(vectors))
    minimal: List[Tuple[int, ...]] = []
    for v in vecs:
        if any(_leq(m, v) and m != v for m in vecs):
            continue
        minimal.append(v)
    return minimal


def _backward_candidates(task) -> List[Tuple[int, ...]]:
    """One backward-coverability round over a slice of the basis.

    Candidates already covered by the *current* basis are filtered in
    the worker (each worker carries the full basis), so the parent only
    minimises.  Pure function of (basis, slice), hence shard-invariant.
    """
    protocol, basis, start, stop = task.payload
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    pres = [_transition_pre(indexed, k) for k in range(len(indexed.deltas))]
    out: List[Tuple[int, ...]] = []
    for m in basis[start:stop]:
        for k in indexed.non_silent:
            delta = indexed.deltas[k]
            pre = pres[k]
            candidate = tuple(max(p, x - d) for p, x, d in zip(pre, m, delta))
            if not any(_leq(b, candidate) for b in basis):
                out.append(candidate)
    return out


def backward_coverability_basis(
    protocol: PopulationProtocol,
    target: Sequence[int],
    iteration_budget: int = 10_000,
    *,
    jobs: int = 1,
) -> List[Tuple[int, ...]]:
    """Minimal basis of ``{C : C can reach some C' >= target}``.

    Classic backward coverability: starting from the upward closure of
    ``target``, repeatedly add the minimal predecessors
    ``max(pre_t, m - Delta_t)`` for each transition ``t`` until the
    basis stabilises.  Termination is guaranteed by Dickson's lemma;
    the ``iteration_budget`` guards against pathological blow-up.

    ``jobs`` shards each round's basis across the process pool; merged
    candidate lists come back in basis order, so the result is
    bit-identical to the serial run.

    Returns the minimal elements of the final upward-closed set.
    """
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    base = indexed.protocol

    basis: List[Tuple[int, ...]] = _minimise([tuple(int(x) for x in target)])
    with get_tracer().span(
        "coverability.backward",
        states=indexed.n,
        iteration_budget=iteration_budget,
        jobs=jobs,
    ) as span:
        meter = progress("backward-coverability", lambda: {"basis": len(basis)})
        with worker_pool(jobs) as pool:
            for _ in range(iteration_budget):
                meter.tick()
                span.add("rounds")
                chunk = default_chunk_size(len(basis), jobs)
                payloads = [
                    (base, basis, start, stop)
                    for start, stop in chunk_ranges(len(basis), chunk)
                ]
                results = run_tasks(
                    _backward_candidates,
                    payloads,
                    jobs=jobs,
                    label="backward-coverability",
                    executor=pool,
                )
                new_elements: List[Tuple[int, ...]] = []
                for envelope in results:
                    new_elements.extend(envelope.value)
                if not new_elements:
                    meter.finish()
                    span.add("basis", len(basis))
                    return basis
                basis = _minimise(basis + new_elements)
        span.add("budget_exceeded")
    raise SearchBudgetExceeded(
        f"backward coverability did not stabilise within {iteration_budget} rounds"
    )


def minimal_coverers(
    protocol: PopulationProtocol,
    state: object,
    iteration_budget: int = 10_000,
    *,
    jobs: int = 1,
) -> List[Multiset]:
    """Minimal configurations from which the given *state* can be covered.

    Convenience wrapper around :func:`backward_coverability_basis` with
    the unit target on ``state``, decoded back to multisets.  Used to
    answer "which populations can ever produce an agent in ``q``?" —
    the covering question at the heart of Lemma 3.2's proof.
    """
    indexed = protocol.indexed()
    target = [0] * indexed.n
    target[indexed.index[state]] = 1
    basis = backward_coverability_basis(protocol, target, iteration_budget, jobs=jobs)
    return [indexed.decode(b) for b in basis]
