"""Coverability: Karp–Miller trees and backward analysis.

A population protocol is a Petri net with one place per state and, for
each transition ``p, q -> p', q'``, a net transition consuming
``<p, q>`` and producing ``<p', q'>``.  Questions of the form "can a
configuration covering ``m`` be reached?" are *coverability* questions,
for which two classical complete procedures exist:

* the **Karp–Miller tree** with omega-acceleration, which computes the
  downward closure of the reachability set of a single initial
  configuration (here: of a single initial *family*, since initial
  configurations are parameterised by the input); and
* **backward coverability**, which saturates the upward-closed set of
  configurations that can cover a target, represented by its finite
  set of minimal elements.

The paper uses coverability through Rackoff's theorem (in the proof of
Lemma 3.2): if some configuration covering a state ``q`` is reachable
from ``C'``, then one is reachable by a sequence of length at most
``2^(2(2n+1)!)``.  The procedures here make such covering sequences
constructive on concrete protocols; the astronomically larger Rackoff
*bound* itself lives in :mod:`repro.bounds.constants`.

Omega entries are represented by ``math.inf``; extended configurations
are tuples mixing ints and ``inf``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..cache.decorator import cached_analysis
from ..core.errors import SearchBudgetExceeded
from ..core.multiset import Multiset
from ..core.protocol import IndexedProtocol, PopulationProtocol
from ..obs import get_tracer, progress

__all__ = [
    "OMEGA",
    "KarpMillerTree",
    "karp_miller",
    "is_coverable_from",
    "backward_coverability_basis",
    "minimal_coverers",
]

OMEGA = math.inf
"""The omega symbol of Karp–Miller trees ("unboundedly many agents")."""

ExtendedConfig = Tuple[Union[int, float], ...]

DEFAULT_NODE_BUDGET = 200_000


def _leq(a: ExtendedConfig, b: ExtendedConfig) -> bool:
    return all(x <= y for x, y in zip(a, b))


def _transition_pre(indexed: IndexedProtocol, t_index: int) -> Tuple[int, ...]:
    pre = [0] * indexed.n
    i, j = indexed.pre_pairs[t_index]
    pre[i] += 1
    pre[j] += 1
    return tuple(pre)


class KarpMillerTree:
    """The result of a Karp–Miller construction.

    Attributes
    ----------
    limits:
        The set of maximal extended configurations discovered.  Their
        downward closure equals the downward closure of the reachable
        set (restricted to the explored roots).
    nodes:
        Every extended configuration created during the construction.
    """

    def __init__(self, indexed: IndexedProtocol, limits: Set[ExtendedConfig], nodes: Set[ExtendedConfig]):
        self.indexed = indexed
        self.limits = limits
        self.nodes = nodes

    def covers(self, target: Sequence[int]) -> bool:
        """Is some reachable configuration >= ``target`` (coverability)?"""
        target_t = tuple(target)
        return any(_leq(target_t, limit) for limit in self.limits)

    def place_bounded(self, state_index: int) -> bool:
        """Is the number of agents in the given state bounded?"""
        return all(limit[state_index] != OMEGA for limit in self.limits)

    def covers_multiset(self, target: Multiset) -> bool:
        """Coverability query with a multiset target over protocol states."""
        return self.covers(self.indexed.encode(target))


def karp_miller(
    protocol: PopulationProtocol,
    roots: Iterable[Sequence[Union[int, float]]],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> KarpMillerTree:
    """Build a Karp–Miller tree from the given roots.

    Roots may already contain :data:`OMEGA` entries; passing
    ``(OMEGA, 0, ..., 0)`` with omega on the input state analyses the
    protocol *for all inputs at once*, which is how the leaderless
    analyses in this package use it.

    Results are memoised through :mod:`repro.cache` (content-addressed
    by protocol, roots and budget) when the active store is enabled;
    pre-indexed first arguments bypass the cache.

    Raises :class:`SearchBudgetExceeded` when more than ``node_budget``
    tree nodes are created.
    """
    # Materialise roots before the cached inner function keys on them
    # (callers may pass generators).
    return _karp_miller(protocol, [tuple(root) for root in roots], node_budget)


def _km_encode_config(config: ExtendedConfig) -> List[Union[int, str]]:
    return ["w" if c == OMEGA else int(c) for c in config]


def _km_decode_config(row: Sequence[Union[int, str]]) -> ExtendedConfig:
    return tuple(OMEGA if c == "w" else int(c) for c in row)


def _km_params(arguments):
    return {
        "roots": [_km_encode_config(root) for root in arguments["roots"]],
        "node_budget": int(arguments["node_budget"]),
    }


def _km_encode(tree: KarpMillerTree, protocol: PopulationProtocol):
    return {
        "limits": [_km_encode_config(c) for c in sorted(tree.limits)],
        "nodes": [_km_encode_config(c) for c in sorted(tree.nodes)],
    }


def _km_decode(payload, protocol: PopulationProtocol) -> KarpMillerTree:
    indexed = protocol.indexed()
    limits = {_km_decode_config(row) for row in payload["limits"]}
    nodes = {_km_decode_config(row) for row in payload["nodes"]}
    for config in limits | nodes:
        if len(config) != indexed.n:
            raise ValueError("configuration width does not match the protocol")
    return KarpMillerTree(indexed, limits, nodes)


@cached_analysis(
    "coverability.karp_miller",
    params=_km_params,
    encode=_km_encode,
    decode=_km_decode,
)
def _karp_miller(
    protocol: PopulationProtocol,
    roots: List[ExtendedConfig],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> KarpMillerTree:
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    pres = [_transition_pre(indexed, k) for k in range(len(indexed.deltas))]

    nodes: Set[ExtendedConfig] = set()
    tracer = get_tracer()
    # Classic Karp-Miller tree: a branch stops when its configuration
    # *repeats* an ancestor; acceleration compares only against
    # ancestors of the same branch.  (Pruning against arbitrary
    # previously-seen nodes is the well-known unsoundness of naive
    # "minimal coverability set" algorithms, and is deliberately
    # avoided here.)
    stack: List[Tuple[ExtendedConfig, Tuple[ExtendedConfig, ...]]] = []
    for root in roots:
        root_t: ExtendedConfig = tuple(root)
        stack.append((root_t, ()))
        nodes.add(root_t)

    def accelerate(config: ExtendedConfig, ancestors: Tuple[ExtendedConfig, ...]) -> ExtendedConfig:
        accelerated = list(config)
        for ancestor in ancestors:
            if _leq(ancestor, config) and ancestor != config:
                for idx in range(len(accelerated)):
                    if ancestor[idx] < config[idx]:
                        accelerated[idx] = OMEGA
        return tuple(accelerated)

    with tracer.span(
        "coverability.karp_miller",
        states=indexed.n,
        transitions=len(indexed.deltas),
        node_budget=node_budget,
    ) as span:
        meter = progress(
            "karp-miller", lambda: {"frontier": len(stack), "nodes": len(nodes)}
        )
        while stack:
            meter.tick()
            config, ancestors = stack.pop()
            if config in ancestors:
                continue  # branch terminates: configuration repeated
            chain = ancestors + (config,)
            for k in indexed.non_silent:
                pre = pres[k]
                if not _leq(pre, config):
                    continue
                delta = indexed.deltas[k]
                successor = tuple(
                    c if c == OMEGA else c + d for c, d in zip(config, delta)
                )
                successor = accelerate(successor, chain)
                nodes.add(successor)
                if len(nodes) > node_budget:
                    span.add("budget_exceeded")
                    raise SearchBudgetExceeded(
                        f"Karp-Miller construction exceeded {node_budget} nodes"
                    )
                stack.append((successor, chain))
        meter.finish()

        limits: Set[ExtendedConfig] = set()
        for candidate in nodes:
            if not any(_leq(candidate, other) and candidate != other for other in nodes):
                limits.add(candidate)
        span.add("nodes", len(nodes))
        span.add("limits", len(limits))
    return KarpMillerTree(indexed, limits, nodes)


def is_coverable_from(
    protocol: PopulationProtocol,
    root: Sequence[Union[int, float]],
    target: Sequence[int],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> bool:
    """Coverability query: can ``root`` reach some ``C >= target``?"""
    tree = karp_miller(protocol, [root], node_budget=node_budget)
    return tree.covers(target)


def _minimise(vectors: Iterable[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Keep only the <=-minimal vectors of a finite collection."""
    vecs = list(dict.fromkeys(vectors))
    minimal: List[Tuple[int, ...]] = []
    for v in vecs:
        if any(_leq(m, v) and m != v for m in vecs):
            continue
        minimal.append(v)
    return minimal


def backward_coverability_basis(
    protocol: PopulationProtocol,
    target: Sequence[int],
    iteration_budget: int = 10_000,
) -> List[Tuple[int, ...]]:
    """Minimal basis of ``{C : C can reach some C' >= target}``.

    Classic backward coverability: starting from the upward closure of
    ``target``, repeatedly add the minimal predecessors
    ``max(pre_t, m - Delta_t)`` for each transition ``t`` until the
    basis stabilises.  Termination is guaranteed by Dickson's lemma;
    the ``iteration_budget`` guards against pathological blow-up.

    Returns the minimal elements of the final upward-closed set.
    """
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    pres = [_transition_pre(indexed, k) for k in range(len(indexed.deltas))]

    basis: List[Tuple[int, ...]] = _minimise([tuple(int(x) for x in target)])
    with get_tracer().span(
        "coverability.backward", states=indexed.n, iteration_budget=iteration_budget
    ) as span:
        meter = progress("backward-coverability", lambda: {"basis": len(basis)})
        for _ in range(iteration_budget):
            meter.tick()
            span.add("rounds")
            new_elements: List[Tuple[int, ...]] = []
            for m in basis:
                for k in indexed.non_silent:
                    delta = indexed.deltas[k]
                    pre = pres[k]
                    candidate = tuple(max(p, x - d) for p, x, d in zip(pre, m, delta))
                    if not any(_leq(b, candidate) for b in basis):
                        new_elements.append(candidate)
            if not new_elements:
                meter.finish()
                span.add("basis", len(basis))
                return basis
            basis = _minimise(basis + new_elements)
        span.add("budget_exceeded")
    raise SearchBudgetExceeded(
        f"backward coverability did not stabilise within {iteration_budget} rounds"
    )


def minimal_coverers(
    protocol: PopulationProtocol,
    state: object,
    iteration_budget: int = 10_000,
) -> List[Multiset]:
    """Minimal configurations from which the given *state* can be covered.

    Convenience wrapper around :func:`backward_coverability_basis` with
    the unit target on ``state``, decoded back to multisets.  Used to
    answer "which populations can ever produce an agent in ``q``?" —
    the covering question at the heart of Lemma 3.2's proof.
    """
    indexed = protocol.indexed()
    target = [0] * indexed.n
    target[indexed.index[state]] = 1
    basis = backward_coverability_basis(protocol, target, iteration_budget)
    return [indexed.decode(b) for b in basis]
