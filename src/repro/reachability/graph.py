"""Exact reachability graphs for a fixed population size.

Population protocol transitions conserve the number of agents, so for
any initial configuration the set of reachable configurations is
finite: a subset of the compositions of ``|C|`` into ``|Q|`` parts.
This module explores that space exactly:

* :func:`enumerate_configurations` — all dense configurations of a
  given size (the full slice of ``N^Q``);
* :class:`ReachabilityGraph` — forward closure from a set of roots, or
  the full slice, with successor/predecessor queries, Tarjan SCC
  decomposition, bottom SCCs and backward closures.

The graph is the engine behind the exact notions the paper uses:
fair executions settle in *bottom* SCCs, ``b``-stability is
"cannot reach a non-``b``-consensus", and verification of a protocol
on an input reduces to consensus checks on bottom SCCs.

All graph nodes are dense count tuples produced by
:class:`~repro.core.protocol.IndexedProtocol`; translate with its
``encode``/``decode`` when interfacing with :class:`Multiset` code.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.errors import SearchBudgetExceeded
from ..core.protocol import IndexedProtocol, PopulationProtocol

__all__ = ["enumerate_configurations", "ReachabilityGraph", "count_configurations"]

Config = Tuple[int, ...]

DEFAULT_NODE_BUDGET = 2_000_000


def count_configurations(num_states: int, size: int) -> int:
    """Number of configurations of ``size`` agents over ``num_states`` states.

    This is the composition count ``C(size + n - 1, n - 1)`` — useful to
    check feasibility before asking for a full slice.
    """
    from math import comb

    return comb(size + num_states - 1, num_states - 1)


def enumerate_configurations(num_states: int, size: int) -> Iterator[Config]:
    """Yield every dense configuration of ``size`` agents over ``num_states`` states.

    Configurations are yielded in lexicographic order of their count
    tuples.  The number of results is :func:`count_configurations`.
    """
    if num_states <= 0:
        if size == 0:
            yield ()
        return

    def rec(prefix: List[int], remaining_states: int, remaining: int) -> Iterator[Config]:
        if remaining_states == 1:
            yield tuple(prefix + [remaining])
            return
        for here in range(remaining + 1):
            yield from rec(prefix + [here], remaining_states - 1, remaining - here)

    yield from rec([], num_states, size)


class ReachabilityGraph:
    """An explicit reachability graph over dense configurations.

    Use :meth:`from_roots` for the forward closure of initial
    configurations (what verification needs) or :meth:`full_slice` for
    every configuration of a size (what stable-set computation needs).
    """

    def __init__(self, indexed: IndexedProtocol):
        self.indexed = indexed
        self.nodes: Set[Config] = set()
        self.edges: Dict[Config, Tuple[Config, ...]] = {}
        self._reverse: Optional[Dict[Config, List[Config]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_roots(
        cls,
        protocol: PopulationProtocol,
        roots: Iterable[Config],
        node_budget: int = DEFAULT_NODE_BUDGET,
    ) -> "ReachabilityGraph":
        """Forward closure of ``roots`` under the step relation.

        Raises :class:`SearchBudgetExceeded` if more than ``node_budget``
        configurations are discovered.
        """
        indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
        graph = cls(indexed)
        queue: deque = deque()
        for root in roots:
            root = tuple(root)
            if root not in graph.nodes:
                graph.nodes.add(root)
                queue.append(root)
        while queue:
            node = queue.popleft()
            succ = []
            for _, nxt in indexed.successors(node):
                succ.append(nxt)
                if nxt not in graph.nodes:
                    graph.nodes.add(nxt)
                    if len(graph.nodes) > node_budget:
                        raise SearchBudgetExceeded(
                            f"reachability exploration exceeded {node_budget} configurations"
                        )
                    queue.append(nxt)
            graph.edges[node] = tuple(dict.fromkeys(succ))
        return graph

    @classmethod
    def full_slice(
        cls,
        protocol: PopulationProtocol,
        size: int,
        node_budget: int = DEFAULT_NODE_BUDGET,
    ) -> "ReachabilityGraph":
        """The graph over *all* configurations of the given size."""
        indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
        total = count_configurations(indexed.n, size)
        if total > node_budget:
            raise SearchBudgetExceeded(
                f"slice of size {size} has {total} configurations, budget is {node_budget}"
            )
        graph = cls(indexed)
        for config in enumerate_configurations(indexed.n, size):
            graph.nodes.add(config)
        for config in graph.nodes:
            succ = [nxt for _, nxt in indexed.successors(config)]
            graph.edges[config] = tuple(dict.fromkeys(succ))
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, config: Config) -> bool:
        return tuple(config) in self.nodes

    def successors_of(self, config: Config) -> Tuple[Config, ...]:
        """Distinct one-step successors (silent self-loops omitted)."""
        return self.edges.get(tuple(config), ())

    def predecessors_of(self, config: Config) -> Tuple[Config, ...]:
        """Distinct one-step predecessors within the explored graph."""
        if self._reverse is None:
            rev: Dict[Config, List[Config]] = {node: [] for node in self.nodes}
            for src, targets in self.edges.items():
                for dst in targets:
                    rev[dst].append(src)
            self._reverse = rev
        return tuple(self._reverse.get(tuple(config), ()))

    def forward_closure(self, sources: Iterable[Config]) -> Set[Config]:
        """All configurations reachable from ``sources`` inside the graph."""
        seen: Set[Config] = set()
        queue = deque(tuple(s) for s in sources if tuple(s) in self.nodes)
        seen.update(queue)
        while queue:
            node = queue.popleft()
            for nxt in self.edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def backward_closure(self, targets: Iterable[Config]) -> Set[Config]:
        """All configurations that can reach ``targets`` inside the graph."""
        if not self.nodes:
            return set()
        self.predecessors_of(next(iter(self.nodes)))  # force reverse index
        assert self._reverse is not None
        seen: Set[Config] = set()
        queue = deque(tuple(t) for t in targets if tuple(t) in self.nodes)
        seen.update(queue)
        while queue:
            node = queue.popleft()
            for prev in self._reverse.get(node, ()):
                if prev not in seen:
                    seen.add(prev)
                    queue.append(prev)
        return seen

    def can_reach(self, source: Config, predicate: Callable[[Config], bool]) -> Optional[Config]:
        """First configuration reachable from ``source`` satisfying ``predicate``.

        Returns ``None`` if no reachable configuration satisfies it.
        """
        source = tuple(source)
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if predicate(node):
                return node
            for nxt in self.edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return None

    def shortest_path(self, source: Config, target: Config) -> Optional[List[Config]]:
        """A shortest configuration path from ``source`` to ``target``."""
        source, target = tuple(source), tuple(target)
        if source not in self.nodes:
            return None
        parent: Dict[Config, Optional[Config]] = {source: None}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if node == target:
                path = [node]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])  # type: ignore[arg-type]
                return list(reversed(path))
            for nxt in self.edges.get(node, ()):
                if nxt not in parent:
                    parent[nxt] = node
                    queue.append(nxt)
        return None

    # ------------------------------------------------------------------
    # Strongly connected components
    # ------------------------------------------------------------------

    def sccs(self) -> List[List[Config]]:
        """Strongly connected components (iterative Tarjan).

        Returned in reverse topological order (every SCC appears before
        any SCC that can reach it), which makes bottom SCCs the ones
        found first among their descendants.
        """
        index_of: Dict[Config, int] = {}
        lowlink: Dict[Config, int] = {}
        on_stack: Set[Config] = set()
        stack: List[Config] = []
        result: List[List[Config]] = []
        counter = 0

        for start in self.nodes:
            if start in index_of:
                continue
            work: List[Tuple[Config, int]] = [(start, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index_of[node] = counter
                    lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = self.edges.get(node, ())
                for i in range(child_index, len(children)):
                    child = children[i]
                    if child not in index_of:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component: List[Config] = []
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        component.append(top)
                        if top == node:
                            break
                    result.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return result

    def bottom_sccs(self) -> List[List[Config]]:
        """SCCs with no edge leaving them — where fair executions settle.

        A fair execution visits every configuration of some bottom SCC
        infinitely often, so the protocol's verdict on an input is
        exactly the common consensus of the bottom SCCs reachable from
        its initial configuration (or no verdict, if one of them is not
        a consensus).
        """
        bottoms = []
        for component in self.sccs():
            members = set(component)
            is_bottom = True
            for node in component:
                for nxt in self.edges.get(node, ()):
                    if nxt not in members:
                        is_bottom = False
                        break
                if not is_bottom:
                    break
            if is_bottom:
                bottoms.append(component)
        return bottoms
