"""Potentially realisable multisets of transitions (Definition 4, §5.4).

A multiset ``pi`` of transitions is *potentially realisable* if there
are an input ``i`` and a configuration ``C`` with ``IC(i) ==pi==> C``,
i.e. ``IC(i) + Delta_pi = C >= 0``.  For a leaderless protocol with the
unique input state ``x`` this is equivalent to the homogeneous system
of Diophantine inequalities

    ``sum_t pi(t) * Delta_t(q) >= 0``   for every ``q in Q \\ {x}``

(the ``x`` component can always be compensated by choosing ``i`` large
enough).  This module builds that system, decides potential
realisability, computes minimal witnesses ``(i, C)``, and — via
Pottier's algorithm — the Hilbert basis of potentially realisable
multisets used by Corollary 5.7 and Lemma 5.8.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, Tuple

from ..cache.decorator import cached_analysis
from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, Transition
from ..core.semantics import displacement_of
from ..diophantine.pottier import pottier_norm_bound, solve_inequalities

__all__ = [
    "input_state",
    "realisability_matrix",
    "is_potentially_realisable",
    "minimal_input_for",
    "witness_configuration",
    "realisable_basis",
    "RealisableBasisElement",
]

State = Hashable


def input_state(protocol: PopulationProtocol) -> State:
    """The unique input state ``x = I(x)`` of a single-input protocol.

    The whole of Section 5 of the paper works with leaderless protocols
    over the single variable ``x``; this helper enforces that shape.
    """
    if len(protocol.input_mapping) != 1:
        raise ProtocolError(
            f"expected a single input variable, protocol has {len(protocol.input_mapping)}"
        )
    (state,) = protocol.input_mapping.values()
    return state


def realisability_matrix(
    protocol: PopulationProtocol,
) -> Tuple[List[List[int]], Tuple[Transition, ...], Tuple[State, ...]]:
    """The Diophantine system whose solutions are the realisable multisets.

    Returns ``(matrix, transitions, row_states)`` where ``matrix`` has
    one row per state ``q != x`` and one column per (non-silent is NOT
    assumed — all transitions are columns, matching the paper's ``N^T``)
    transition, with entry ``Delta_t(q)``.  The constraint is
    ``matrix . pi >= 0``.

    Only valid for leaderless protocols: with leaders the system is
    inhomogeneous (``L(q) + Delta_pi(q) >= 0``) and Pottier's theorem
    does not apply directly — exactly why the paper's Section 5 bound
    is restricted to the leaderless case.
    """
    if not protocol.is_leaderless:
        raise ProtocolError("realisability matrix is defined for leaderless protocols only")
    x = input_state(protocol)
    transitions = protocol.transitions
    row_states = tuple(q for q in protocol.states if q != x)
    matrix = [[t.displacement[q] for t in transitions] for q in row_states]
    return matrix, transitions, row_states


def is_potentially_realisable(protocol: PopulationProtocol, pi: Multiset) -> bool:
    """Decide Definition 4 for a concrete multiset of transitions.

    For leaderless protocols: ``Delta_pi(q) >= 0`` for all ``q != x``.
    For protocols with leaders: ``L(q) + Delta_pi(q) >= 0`` for all
    ``q != x`` (the input coordinate is still free).
    """
    x = input_state(protocol)
    displacement = displacement_of(pi)
    for q in protocol.states:
        if q == x:
            continue
        if protocol.leaders[q] + displacement[q] < 0:
            return False
    return True


def minimal_input_for(protocol: PopulationProtocol, pi: Multiset) -> Optional[int]:
    """The least input ``i`` with ``IC(i) + Delta_pi >= 0``, or ``None``.

    ``None`` when ``pi`` is not potentially realisable at all.
    """
    if not is_potentially_realisable(protocol, pi):
        return None
    x = input_state(protocol)
    displacement = displacement_of(pi)
    return max(0, -(protocol.leaders[x] + displacement[x]))


def witness_configuration(protocol: PopulationProtocol, pi: Multiset, i: Optional[int] = None) -> Multiset:
    """The configuration ``C = IC(i) + Delta_pi`` witnessing realisability.

    Uses the minimal input when ``i`` is omitted.  Raises ``ValueError``
    for unrealisable ``pi`` or insufficient ``i``.
    """
    if i is None:
        i = minimal_input_for(protocol, pi)
        if i is None:
            raise ValueError("multiset is not potentially realisable")
    x = input_state(protocol)
    base = protocol.leaders + Multiset.singleton(x, i)
    result = base + displacement_of(pi)
    if not result.is_natural:
        raise ValueError(f"input {i} is insufficient to realise {pi.pretty()}")
    return result


class RealisableBasisElement:
    """One element of the basis of Corollary 5.7.

    Attributes
    ----------
    pi:
        The multiset of transitions (a minimal solution of the system).
    input_size:
        The minimal ``i`` with ``IC(i) ==pi==> configuration``.
    configuration:
        The witness ``C = IC(i) + Delta_pi``.
    """

    def __init__(self, protocol: PopulationProtocol, pi: Multiset):
        self.pi = pi
        i = minimal_input_for(protocol, pi)
        if i is None:
            raise ValueError(f"{pi.pretty()} is not potentially realisable")
        self.input_size = i
        self.configuration = witness_configuration(protocol, pi, i)

    @property
    def size(self) -> int:
        """``|pi|`` — bounded by ``xi / 2`` per Corollary 5.7."""
        return self.pi.size

    def supported_on(self, states: Set[State]) -> bool:
        """Is the witness configuration 0-concentrated on ``states``?"""
        return self.configuration.supported_on(states)

    def __repr__(self) -> str:
        return (
            f"RealisableBasisElement(|pi|={self.size}, i={self.input_size}, "
            f"C={self.configuration.pretty()})"
        )


def _basis_params(arguments):
    return {"frontier_budget": int(arguments["frontier_budget"])}


def _basis_encode(basis, protocol: PopulationProtocol):
    # One dense count vector over the protocol's transition order per
    # element; input_size and configuration are cheap recomputations.
    return {
        "solutions": [
            [element.pi[t] for t in protocol.transitions] for element in basis
        ]
    }


def _basis_decode(payload, protocol: PopulationProtocol):
    transitions = protocol.transitions
    basis = []
    for counts in payload["solutions"]:
        if len(counts) != len(transitions):
            raise ValueError("solution width does not match the transition count")
        pi = Multiset({t: int(c) for t, c in zip(transitions, counts) if c})
        basis.append(RealisableBasisElement(protocol, pi))
    return basis


@cached_analysis(
    "pottier.realisable_basis",
    params=_basis_params,
    encode=_basis_encode,
    decode=_basis_decode,
)
def realisable_basis(
    protocol: PopulationProtocol,
    frontier_budget: int = 2_000_000,
) -> List[RealisableBasisElement]:
    """The Hilbert basis of potentially realisable multisets (Cor. 5.7).

    Every potentially realisable multiset is a sum of elements of the
    returned basis, and every element satisfies the Pottier bound
    ``|pi| <= xi / 2`` (checked empirically by experiment E5).

    Protocols whose state set is ``{x}`` only (no other states) have no
    constraints; the basis is then the unit multiset of each transition.
    Memoised through :mod:`repro.cache` when the active store is on.
    """
    matrix, transitions, row_states = realisability_matrix(protocol)
    if not row_states:
        return [
            RealisableBasisElement(protocol, Multiset({t: 1}))
            for t in transitions
        ]
    solutions = solve_inequalities(matrix, frontier_budget=frontier_budget)
    basis = []
    for solution in solutions:
        pi = Multiset({t: c for t, c in zip(transitions, solution) if c})
        basis.append(RealisableBasisElement(protocol, pi))
    return basis
