"""The state equation: Parikh-level reachability analysis.

For a firing sequence ``C --sigma--> C'`` the Parikh image ``pi`` of
``sigma`` satisfies the *state equation* ``C + Delta . pi = C'``
(Lemma 5.1(i) in multiset form).  Solvability of the state equation
over the naturals is therefore a *necessary* condition for
reachability — the classical marking-equation test from Petri net
theory, decidable via the Hilbert-basis machinery of
:mod:`repro.diophantine`:

* :func:`state_equation_solutions` — minimal Parikh candidates ``pi``
  with ``Delta . pi = C' - C``, plus the homogeneous basis (the
  "T-invariants", firing count vectors with zero net effect);
* :func:`state_equation_solvable` — the yes/no necessary condition;
* :func:`refute_reachability` — a best-effort *disproof* of
  ``C ->* C'``: population mismatch, a separating linear invariant
  (:mod:`repro.analysis.invariants`), or state-equation infeasibility.

A ``None`` from :func:`refute_reachability` does **not** imply
reachability (the state equation ignores intermediate non-negativity);
exact answers for fixed populations come from
:class:`repro.reachability.graph.ReachabilityGraph`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, Transition
from ..diophantine.pottier import solve_equalities_inhomogeneous

__all__ = [
    "state_equation_solutions",
    "state_equation_solvable",
    "refute_reachability",
    "t_invariants",
]


def _displacement_matrix(protocol: PopulationProtocol) -> Tuple[List[List[int]], Tuple[Transition, ...]]:
    transitions = protocol.transitions
    matrix = [
        [t.displacement[q] for t in transitions]
        for q in protocol.states
    ]
    return matrix, transitions


def state_equation_solutions(
    protocol: PopulationProtocol,
    source: Multiset,
    target: Multiset,
    frontier_budget: int = 2_000_000,
) -> Tuple[List[Multiset], List[Multiset]]:
    """Minimal Parikh solutions of ``Delta . pi = target - source``.

    Returns ``(minimal, homogeneous)`` as multisets of transitions; the
    full solution set is ``minimal + N-combinations of homogeneous``.
    An empty ``minimal`` list *refutes* reachability.
    """
    matrix, transitions = _displacement_matrix(protocol)
    rhs = [(target - source)[q] for q in protocol.states]
    particular, homogeneous = solve_equalities_inhomogeneous(
        matrix, rhs, frontier_budget=frontier_budget
    )

    def to_multiset(vector) -> Multiset:
        return Multiset({t: c for t, c in zip(transitions, vector) if c})

    return [to_multiset(v) for v in particular], [to_multiset(v) for v in homogeneous]


def state_equation_solvable(
    protocol: PopulationProtocol,
    source: Multiset,
    target: Multiset,
    frontier_budget: int = 2_000_000,
) -> bool:
    """Is the state equation solvable (necessary for ``source ->* target``)?"""
    minimal, _ = state_equation_solutions(
        protocol, source, target, frontier_budget=frontier_budget
    )
    return bool(minimal) or source == target


def t_invariants(
    protocol: PopulationProtocol,
    frontier_budget: int = 2_000_000,
) -> List[Multiset]:
    """The minimal T-invariants: non-zero ``pi`` with ``Delta . pi = 0``.

    Firing any realisable T-invariant returns to the same
    configuration — these are the cycles of the configuration graph at
    the Parikh level (silent transitions are one-element examples).
    """
    matrix, transitions = _displacement_matrix(protocol)
    from ..diophantine.pottier import solve_equalities

    basis = solve_equalities(matrix, frontier_budget=frontier_budget)
    return [
        Multiset({t: c for t, c in zip(transitions, vector) if c})
        for vector in basis
    ]


def refute_reachability(
    protocol: PopulationProtocol,
    source: Multiset,
    target: Multiset,
    frontier_budget: int = 2_000_000,
) -> Optional[str]:
    """A human-readable disproof of ``source ->* target``, if found.

    Checks, in increasing cost: population counts, separating linear
    invariants, and state-equation feasibility.  ``None`` = no
    obstruction found (reachability undecided at this level).
    """
    if source.size != target.size:
        return (
            f"population differs: |source| = {source.size}, |target| = {target.size} "
            "(transitions conserve the number of agents)"
        )
    from ..analysis.invariants import conserved_value, explains_conservation

    witness = explains_conservation(protocol, source, target)
    if witness is not None:
        pretty = {str(q): str(w) for q, w in witness.items() if w != 0}
        return (
            f"the linear invariant {pretty} separates them: "
            f"{conserved_value(witness, source)} != {conserved_value(witness, target)}"
        )
    if not state_equation_solvable(protocol, source, target, frontier_budget=frontier_budget):
        return "the state equation Delta.pi = target - source has no natural solution"
    return None
