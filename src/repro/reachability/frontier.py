"""The sharded, canonicalised, resumable Karp–Miller frontier engine.

:mod:`repro.reachability.coverability` exposes the classic Karp–Miller
API; this module is the machinery underneath it.  The classic
construction is a depth-first walk whose cost is dominated not by the
number of *distinct* extended configurations but by the number of
*branches* re-deriving them: on ``flat:8`` the tree has 45 nodes yet the
naive walk performs 464,821 expansions.  The engine here removes that
wall with three independently switchable mechanisms:

* **Level-synchronous frontier.**  The tree is grown breadth-first,
  one level per round.  Without deduplication the set of nodes created
  is *exactly* the classic tree's node set (the tree is a function of
  the (config, ancestor-chain) pairs, not of visit order), so the
  default engine is bit-compatible with the historical DFS — same
  ``nodes``, same ``limits`` — while exposing round boundaries for
  sharding and checkpointing.

* **Symmetry quotient** (``quotient=True``).  Root-fixing protocol
  automorphisms are computed from the cache's colour-refinement classes
  (:func:`repro.cache.fingerprint._refined_colors`); a configuration is
  enqueued only if its canonical form (minimum over the group orbit)
  has never been enqueued before.  Branches still carry *genuine*
  ancestor chains — acceleration never compares against a permuted
  configuration, which keeps ω-introduction sound.  The exploration
  becomes an exact-dedup subtree of the classic tree; completeness
  holds by a jump argument: a pruned leaf equals an automorphic image
  of an earlier-expanded node, and the remaining firing sequence can be
  replayed through the automorphism from there.  At finalisation the
  node set is closed under the group orbit before taking maximal
  elements, so ``limits`` is the same minimal antichain (the clover)
  the unquotiented run produces — bit-identical limits and verdicts,
  exponentially fewer expansions.

* **Sharding** (``jobs>1``).  Each round's frontier is split into
  contiguous chunks expanded by :func:`repro.parallel.run_tasks`
  workers; results merge in task order, so the successor stream the
  parent consumes is the frontier order regardless of ``jobs`` — the
  serial run is the reference semantics, bit-identical at any width.

* **Checkpointing** (``checkpoint_interval``).  At round boundaries the
  engine snapshots (frontier, nodes, visited, accelerations) into the
  content-addressed cache, keyed by (protocol fingerprint,
  presentation, roots, quotient flag) — *not* by budget or jobs, so a
  budget-exceeded run leaves a checkpoint a larger-budget rerun picks
  up, and a SIGKILL'd ``repro analyze`` resumes via ``--resume``.
  Checkpoints register with the flight recorder (``km-checkpoint`` /
  ``km-resume`` events, a ``checkpoints`` manifest field) and are
  deleted once the analysis completes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.errors import SearchBudgetExceeded
from ..core.protocol import IndexedProtocol, PopulationProtocol
from ..obs import progress
from ..obs.runs import current_run
from ..parallel import run_tasks
from ..parallel.pool import chunk_ranges, default_chunk_size, resolve_jobs, worker_pool

__all__ = [
    "OMEGA",
    "ExtendedConfig",
    "Permutation",
    "DEFAULT_SYMMETRY_BUDGET",
    "CHECKPOINT_ANALYSIS",
    "CHECKPOINT_SCHEMA_VERSION",
    "apply_permutation",
    "canonical_config",
    "configuration_symmetries",
    "FrontierStats",
    "FrontierResult",
    "KarpMillerFrontier",
]

OMEGA = math.inf
"""The omega symbol of Karp–Miller trees ("unboundedly many agents")."""

ExtendedConfig = Tuple[Union[int, float], ...]

Permutation = Tuple[int, ...]
"""A state-index permutation ``p`` acting on configs by ``c[j] -> c[p[j]]``."""

DEFAULT_SYMMETRY_BUDGET = 5_040  # 7! — candidate permutations tried, tops
CHECKPOINT_ANALYSIS = "coverability.checkpoint"
CHECKPOINT_SCHEMA_VERSION = 1


def _leq(a: ExtendedConfig, b: ExtendedConfig) -> bool:
    return all(x <= y for x, y in zip(a, b))


def _transition_pre(indexed: IndexedProtocol, t_index: int) -> Tuple[int, ...]:
    pre = [0] * indexed.n
    i, j = indexed.pre_pairs[t_index]
    pre[i] += 1
    pre[j] += 1
    return tuple(pre)


# ---------------------------------------------------------------------------
# Configuration symmetries
# ---------------------------------------------------------------------------


def apply_permutation(perm: Permutation, config: ExtendedConfig) -> ExtendedConfig:
    """The image of ``config`` under the permutation action."""
    return tuple(config[perm[j]] for j in range(len(perm)))


def canonical_config(config: ExtendedConfig, group: Sequence[Permutation]) -> ExtendedConfig:
    """The lexicographically least element of the group orbit of ``config``."""
    if len(group) <= 1:
        return config
    return min(apply_permutation(perm, config) for perm in group)


def _transition_profile(indexed: IndexedProtocol) -> Dict[Tuple[Tuple[int, int], Tuple[int, ...]], int]:
    profile: Dict[Tuple[Tuple[int, int], Tuple[int, ...]], int] = {}
    for k in indexed.non_silent:
        key = (indexed.pre_pairs[k], indexed.deltas[k])
        profile[key] = profile.get(key, 0) + 1
    return profile


def configuration_symmetries(
    protocol: Union[PopulationProtocol, IndexedProtocol],
    roots: Sequence[ExtendedConfig],
    symmetry_budget: int = DEFAULT_SYMMETRY_BUDGET,
) -> Tuple[Permutation, ...]:
    """Protocol automorphisms (as index permutations) fixing every root.

    Candidates permute states only within their colour-refinement class
    (the same invariant the cache fingerprint uses), then are filtered
    by exact preservation of the non-silent transition multiset and of
    each root configuration.  The survivors form a permutation group —
    closed under composition and inverse by construction — returned in
    the ``c[j] -> c[perm[j]]`` action convention, identity first.

    When the candidate count exceeds ``symmetry_budget`` the search is
    skipped entirely and only the identity is returned: a smaller group
    merely weakens the quotient, never its soundness.
    """
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    base = indexed.protocol
    n = indexed.n
    identity: Permutation = tuple(range(n))
    if n <= 1:
        return (identity,)

    from ..cache.fingerprint import _refined_colors

    colors = _refined_colors(base)
    classes: Dict[int, List[int]] = {}
    for state, color in colors.items():
        classes.setdefault(color, []).append(indexed.index[state])
    blocks = [sorted(members) for _, members in sorted(classes.items())]

    candidates = 1
    for block in blocks:
        candidates *= math.factorial(len(block))
        if candidates > symmetry_budget:
            return (identity,)
    if candidates <= 1:
        return (identity,)

    profile = _transition_profile(indexed)
    roots_t = [tuple(root) for root in roots]
    group: List[Permutation] = []
    for images in itertools.product(*(itertools.permutations(block) for block in blocks)):
        sigma = [0] * n  # sigma[i]: the state index i is renamed to
        for block, image in zip(blocks, images):
            for source, target in zip(block, image):
                sigma[source] = target
        mapped: Dict[Tuple[Tuple[int, int], Tuple[int, ...]], int] = {}
        for k in indexed.non_silent:
            i, j = indexed.pre_pairs[k]
            pair = (sigma[i], sigma[j])
            if pair[0] > pair[1]:
                pair = (pair[1], pair[0])
            delta = indexed.deltas[k]
            image_delta = [0] * n
            for idx in range(n):
                image_delta[sigma[idx]] = delta[idx]
            key = (pair, tuple(image_delta))
            mapped[key] = mapped.get(key, 0) + 1
        if mapped != profile:
            continue
        # Action convention: image[j] = c[sigma^-1(j)], so store the inverse.
        perm = [0] * n
        for idx in range(n):
            perm[sigma[idx]] = idx
        perm_t = tuple(perm)
        if all(apply_permutation(perm_t, root) == root for root in roots_t):
            group.append(perm_t)
    group.sort()
    if identity not in group:  # pragma: no cover - identity always survives
        group.insert(0, identity)
    return tuple(group)


# ---------------------------------------------------------------------------
# Frontier state, checkpoint codec
# ---------------------------------------------------------------------------

FrontierEntry = Tuple[ExtendedConfig, Tuple[ExtendedConfig, ...]]


@dataclass
class FrontierStats:
    """Operational counters of one engine run (not part of the tree)."""

    expansions: int = 0
    rounds: int = 0
    dedup_hits: int = 0
    resumed_expansions: int = 0
    checkpoints_written: int = 0
    resumed: bool = False


@dataclass
class FrontierResult:
    nodes: Set[ExtendedConfig]
    limits: Set[ExtendedConfig]
    accelerations: Dict[ExtendedConfig, Tuple[ExtendedConfig, ...]]
    group: Tuple[Permutation, ...]
    stats: FrontierStats = field(default_factory=FrontierStats)


def _encode_config(config: ExtendedConfig) -> List[Union[int, str]]:
    return ["w" if c == OMEGA else int(c) for c in config]


def _decode_config(row: Sequence[Union[int, str]]) -> ExtendedConfig:
    return tuple(OMEGA if c == "w" else int(c) for c in row)


class _FrontierState:
    """The resumable portion of a run: everything a round boundary needs."""

    def __init__(
        self,
        frontier: List[FrontierEntry],
        nodes: Set[ExtendedConfig],
        visited: Optional[Set[ExtendedConfig]],
        accelerations: Dict[ExtendedConfig, Set[ExtendedConfig]],
        expansions: int,
        rounds: int,
    ) -> None:
        self.frontier = frontier
        self.nodes = nodes
        self.visited = visited
        self.accelerations = accelerations
        self.expansions = expansions
        self.rounds = rounds

    def snapshot(self) -> "_FrontierState":
        return _FrontierState(
            frontier=self.frontier,  # rebuilt (never mutated) between rounds
            nodes=set(self.nodes),
            visited=None if self.visited is None else set(self.visited),
            accelerations={node: set(used) for node, used in self.accelerations.items()},
            expansions=self.expansions,
            rounds=self.rounds,
        )

    def encode(self) -> Dict[str, Any]:
        table: Dict[ExtendedConfig, int] = {}

        def cid(config: ExtendedConfig) -> int:
            index = table.get(config)
            if index is None:
                index = len(table)
                table[config] = index
            return index

        frontier = [
            [cid(config), [cid(a) for a in ancestors]]
            for config, ancestors in self.frontier
        ]
        nodes = sorted(cid(config) for config in sorted(self.nodes))
        visited = (
            None
            if self.visited is None
            else sorted(cid(config) for config in sorted(self.visited))
        )
        accelerations = [
            [cid(node), sorted(cid(a) for a in sorted(used))]
            for node, used in sorted(self.accelerations.items())
        ]
        return {
            "version": CHECKPOINT_SCHEMA_VERSION,
            "expansions": self.expansions,
            "rounds": self.rounds,
            "configs": [_encode_config(config) for config in table],
            "frontier": frontier,
            "nodes": nodes,
            "visited": visited,
            "accelerations": accelerations,
        }

    @classmethod
    def decode(cls, payload: Dict[str, Any], n: int) -> "_FrontierState":
        if payload.get("version") != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(f"unsupported checkpoint version {payload.get('version')!r}")
        configs = [_decode_config(row) for row in payload["configs"]]
        for config in configs:
            if len(config) != n:
                raise ValueError("checkpoint configuration width does not match")
        frontier = [
            (configs[index], tuple(configs[a] for a in ancestors))
            for index, ancestors in payload["frontier"]
        ]
        nodes = {configs[index] for index in payload["nodes"]}
        visited = (
            None
            if payload["visited"] is None
            else {configs[index] for index in payload["visited"]}
        )
        accelerations = {
            configs[index]: {configs[a] for a in used}
            for index, used in payload["accelerations"]
        }
        return cls(
            frontier=frontier,
            nodes=nodes,
            visited=visited,
            accelerations=accelerations,
            expansions=int(payload["expansions"]),
            rounds=int(payload["rounds"]),
        )


def checkpoint_key(
    fingerprint: str,
    presentation: str,
    roots: Sequence[ExtendedConfig],
    quotient: bool,
) -> str:
    """Content address of a resumable run.

    Deliberately excludes ``node_budget``, ``jobs`` and the checkpoint
    interval: a run killed at any budget leaves state any compatible
    rerun — wider, deeper, or sharded differently — can pick up.
    """
    body = json.dumps(
        {
            "analysis": CHECKPOINT_ANALYSIS,
            "version": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "presentation": presentation,
            "roots": [_encode_config(root) for root in roots],
            "quotient": bool(quotient),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def _accelerate(
    config: ExtendedConfig, chain: Tuple[ExtendedConfig, ...]
) -> Tuple[ExtendedConfig, Tuple[ExtendedConfig, ...]]:
    """Classic ω-acceleration against *genuine* branch ancestors.

    Returns the accelerated configuration plus the ancestors that
    introduced at least one new ω component (the acceleration ancestry
    recorded on the tree).
    """
    accelerated = list(config)
    used: List[ExtendedConfig] = []
    for ancestor in chain:
        if _leq(ancestor, config) and ancestor != config:
            introduced = False
            for idx in range(len(accelerated)):
                if ancestor[idx] < config[idx] and accelerated[idx] != OMEGA:
                    accelerated[idx] = OMEGA
                    introduced = True
            if introduced:
                used.append(ancestor)
    return tuple(accelerated), tuple(used)


def _expand_entries(task: Any) -> List[List[Tuple[ExtendedConfig, Tuple[ExtendedConfig, ...], bool]]]:
    """Expand one chunk of frontier entries (runs in a pool worker).

    For each entry, for each enabled non-silent transition, yields the
    accelerated successor, the ancestors used to accelerate it, and
    whether the successor terminates its branch (exact ancestor repeat
    — the classic stopping rule).  Pure function of the entries, so the
    merged stream is identical for any sharding.
    """
    protocol, entries = task.payload
    indexed = protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
    pres = [_transition_pre(indexed, k) for k in range(len(indexed.deltas))]
    out: List[List[Tuple[ExtendedConfig, Tuple[ExtendedConfig, ...], bool]]] = []
    for config, ancestors in entries:
        chain = ancestors + (config,)
        row: List[Tuple[ExtendedConfig, Tuple[ExtendedConfig, ...], bool]] = []
        for k in indexed.non_silent:
            if not _leq(pres[k], config):
                continue
            delta = indexed.deltas[k]
            successor = tuple(
                c if c == OMEGA else c + d for c, d in zip(config, delta)
            )
            successor, used = _accelerate(successor, chain)
            row.append((successor, used, successor in chain))
        out.append(row)
    return out


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class KarpMillerFrontier:
    """One Karp–Miller construction over a level-synchronous frontier."""

    def __init__(
        self,
        protocol: Union[PopulationProtocol, IndexedProtocol],
        roots: Sequence[ExtendedConfig],
        *,
        node_budget: int,
        jobs: int = 1,
        quotient: bool = False,
        checkpoint_interval: Optional[int] = None,
        symmetry_budget: int = DEFAULT_SYMMETRY_BUDGET,
        expansion_budget: Optional[int] = None,
    ) -> None:
        self.indexed = (
            protocol.indexed() if isinstance(protocol, PopulationProtocol) else protocol
        )
        self.protocol = self.indexed.protocol
        self.roots: List[ExtendedConfig] = [tuple(root) for root in roots]
        for root in self.roots:
            if len(root) != self.indexed.n:
                raise ValueError("root configuration width does not match the protocol")
        self.node_budget = node_budget
        self.jobs = resolve_jobs(jobs)
        self.quotient = quotient
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
        self.checkpoint_interval = checkpoint_interval
        self.symmetry_budget = symmetry_budget
        # The node budget bounds *distinct* labels, not work: a tree of
        # 45 nodes can cost 10^5+ branch expansions (flat:8).  Callers
        # exploring adversarial protocols (property tests) can bound
        # the work itself.
        self.expansion_budget = expansion_budget
        self.group: Tuple[Permutation, ...] = (
            configuration_symmetries(self.indexed, self.roots, symmetry_budget)
            if quotient
            else (tuple(range(self.indexed.n)),)
        )
        self.stats = FrontierStats()
        self._checkpoint_key: Optional[str] = None
        self._fingerprint: Optional[str] = None

    # -- checkpoint plumbing -------------------------------------------

    def _checkpoint_store(self) -> Optional[Any]:
        if self.checkpoint_interval is None:
            return None
        from ..cache.fingerprint import UncacheableProtocolError
        from ..cache.store import active_store

        store = active_store()
        if store is None:
            return None
        if self._checkpoint_key is None:
            from ..cache.fingerprint import presentation_digest, protocol_fingerprint

            try:
                self._fingerprint = protocol_fingerprint(self.protocol)
                presentation = presentation_digest(self.protocol)
            except UncacheableProtocolError:
                return None
            self._checkpoint_key = checkpoint_key(
                self._fingerprint, presentation, self.roots, self.quotient
            )
        return store

    def _write_checkpoint(self, store: Any, state: _FrontierState) -> None:
        assert self._checkpoint_key is not None and self._fingerprint is not None
        if not store.put_payload(
            CHECKPOINT_ANALYSIS, self._checkpoint_key, self._fingerprint, state.encode()
        ):
            return
        self.stats.checkpoints_written += 1
        run = current_run()
        if run is not None:
            info = {
                "expansions": state.expansions,
                "rounds": state.rounds,
                "nodes": len(state.nodes),
                "frontier": len(state.frontier),
            }
            run.note_checkpoint(CHECKPOINT_ANALYSIS, self._checkpoint_key, **info)
            run.event("km-checkpoint", key=self._checkpoint_key, **info)

    def _try_resume(self, store: Any) -> Optional[_FrontierState]:
        from ..cache.store import MISS

        assert self._checkpoint_key is not None
        payload = store.get_payload(CHECKPOINT_ANALYSIS, self._checkpoint_key)
        if payload is MISS:
            return None
        try:
            state = _FrontierState.decode(payload, self.indexed.n)
        except (KeyError, ValueError, TypeError, IndexError):
            store.invalidate(CHECKPOINT_ANALYSIS, self._checkpoint_key)
            return None
        if self.quotient and state.visited is None:
            store.invalidate(CHECKPOINT_ANALYSIS, self._checkpoint_key)
            return None
        run = current_run()
        if run is not None:
            run.event(
                "km-resume",
                key=self._checkpoint_key,
                expansions=state.expansions,
                rounds=state.rounds,
                nodes=len(state.nodes),
                frontier=len(state.frontier),
            )
        return state

    # -- the construction ----------------------------------------------

    def _initial_state(self) -> _FrontierState:
        nodes: Set[ExtendedConfig] = set()
        frontier: List[FrontierEntry] = []
        visited: Optional[Set[ExtendedConfig]] = set() if self.quotient else None
        for root in self.roots:
            nodes.add(root)
            frontier.append((root, ()))
            if visited is not None:
                visited.add(canonical_config(root, self.group))
        return _FrontierState(
            frontier=frontier,
            nodes=nodes,
            visited=visited,
            accelerations={},
            expansions=0,
            rounds=0,
        )

    def run(self) -> FrontierResult:
        store = self._checkpoint_store()
        state: Optional[_FrontierState] = None
        if store is not None:
            state = self._try_resume(store)
            if state is not None:
                self.stats.resumed = True
                self.stats.resumed_expansions = state.expansions
        if state is None:
            state = self._initial_state()

        protocol = self.protocol
        last_checkpoint = state.expansions
        meter = progress(
            "karp-miller",
            lambda: {
                "frontier": len(state.frontier),
                "nodes": len(state.nodes),
                "rounds": state.rounds,
            },
        )
        with worker_pool(self.jobs) as pool:
            while state.frontier:
                boundary = state.snapshot() if store is not None else None
                if (
                    boundary is not None
                    and state.expansions - last_checkpoint >= self.checkpoint_interval
                ):
                    self._write_checkpoint(store, boundary)
                    last_checkpoint = state.expansions
                try:
                    self._expand_round(state, meter, pool)
                except SearchBudgetExceeded:
                    if boundary is not None:
                        self._write_checkpoint(store, boundary)
                    raise
        meter.finish()

        if store is not None:
            # The run completed: its result lands in the analysis cache,
            # so the partial-tree entry has nothing left to resume.
            store.invalidate(CHECKPOINT_ANALYSIS, self._checkpoint_key)

        self.stats.expansions = state.expansions
        self.stats.rounds = state.rounds
        limits = self._limits(state.nodes)
        accelerations = {
            node: tuple(sorted(used)) for node, used in state.accelerations.items()
        }
        return FrontierResult(
            nodes=state.nodes,
            limits=limits,
            accelerations=accelerations,
            group=self.group,
            stats=self.stats,
        )

    def _expand_round(self, state: _FrontierState, meter: Any, pool: Any = None) -> None:
        frontier = state.frontier
        if (
            self.expansion_budget is not None
            and state.expansions + len(frontier) > self.expansion_budget
        ):
            raise SearchBudgetExceeded(
                f"Karp-Miller construction exceeded {self.expansion_budget} expansions"
            )
        chunk = default_chunk_size(len(frontier), self.jobs)
        ranges = chunk_ranges(len(frontier), chunk)
        payloads = [(self.protocol, frontier[start:stop]) for start, stop in ranges]
        results = run_tasks(
            _expand_entries, payloads, jobs=self.jobs, label="karp-miller", executor=pool
        )

        nodes = state.nodes
        visited = state.visited
        next_frontier: List[FrontierEntry] = []
        for envelope, (start, stop) in zip(results, ranges):
            for (config, ancestors), row in zip(frontier[start:stop], envelope.value):
                chain = ancestors + (config,)
                for successor, used, terminated in row:
                    nodes.add(successor)
                    if len(nodes) > self.node_budget:
                        raise SearchBudgetExceeded(
                            f"Karp-Miller construction exceeded {self.node_budget} nodes"
                        )
                    if used:
                        state.accelerations.setdefault(successor, set()).update(used)
                    if terminated:
                        continue
                    if visited is not None:
                        canon = canonical_config(successor, self.group)
                        if canon in visited:
                            self.stats.dedup_hits += 1
                            continue
                        visited.add(canon)
                    next_frontier.append((successor, chain))
                meter.tick()
        state.expansions += len(frontier)
        state.rounds += 1
        state.frontier = next_frontier

    def _limits(self, nodes: Set[ExtendedConfig]) -> Set[ExtendedConfig]:
        """Maximal elements of the orbit closure of the node set.

        With the trivial group this is the classic "maximal nodes"
        computation.  Under a quotient the closure restores the pruned
        automorphic images first, so the resulting antichain is the
        same clover — bit-identical limits — the unquotiented tree
        yields.
        """
        if len(self.group) > 1:
            closure: Set[ExtendedConfig] = set()
            for config in nodes:
                for perm in self.group:
                    closure.add(apply_permutation(perm, config))
        else:
            closure = nodes
        limits: Set[ExtendedConfig] = set()
        for candidate in closure:
            if not any(_leq(candidate, other) and candidate != other for other in closure):
                limits.add(candidate)
        return limits
