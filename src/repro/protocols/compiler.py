"""The Presburger compiler: predicate ASTs to population protocols.

Angluin et al. [8] proved population protocols compute exactly the
Presburger predicates; the constructive half of that theorem compiles
any boolean combination of threshold and modulo atoms into a protocol.
:func:`compile_predicate` is that compiler:

* :class:`~repro.core.predicates.Threshold` atoms become the general
  linear threshold protocol (:mod:`repro.protocols.threshold_linear`);
* :class:`~repro.core.predicates.Modulo` atoms become accumulator
  protocols (:mod:`repro.protocols.modulo`);
* ``Not`` flips outputs, ``And`` / ``Or`` take synchronous products;
* ``Constant`` becomes the one-state protocol with the fixed output.

All sub-protocols are built over the *union* of the predicate's
variables (atoms pad missing variables with coefficient 0), so the
product construction always finds matching input alphabets.

The cost is the product of the atom sizes — state complexity grows
multiplicatively with boolean structure, which is one face of the
succinctness question the paper studies (the succinct protocols of
Blondin et al. [11, 12] exist precisely to beat this compiler).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..core.multiset import Multiset
from ..core.predicates import And, Constant, Modulo, Not, Or, Predicate, Threshold
from ..core.protocol import PopulationProtocol
from .combinators import conjunction, disjunction, negation
from .modulo import modulo_protocol
from .threshold_linear import linear_threshold

__all__ = ["compile_predicate"]


def _constant_protocol(value: bool, variables: Tuple) -> PopulationProtocol:
    state = "t" if value else "f"
    return PopulationProtocol(
        states=(state,),
        transitions=(),
        leaders=Multiset(),
        input_mapping={variable: state for variable in variables},
        output={state: 1 if value else 0},
        name=f"constant({value})",
    )


def compile_predicate(
    predicate: Predicate,
    variables: Sequence = None,
) -> PopulationProtocol:
    """Compile a Presburger predicate into a population protocol.

    Parameters
    ----------
    predicate:
        Any combination of ``Threshold``, ``Modulo``, ``Constant``,
        ``Not``, ``And`` and ``Or`` nodes.
    variables:
        The input alphabet to build over; defaults to the predicate's
        own variables.  Must be non-empty (protocols need agents) and
        must contain every variable the predicate mentions.

    Returns a leaderless protocol computing the predicate; verify with
    :func:`repro.analysis.verification.verify_protocol` (the test
    suite does, exhaustively, for a battery of compound predicates).
    """
    if variables is None:
        variables = predicate.variables()
    variables = tuple(dict.fromkeys(variables))
    missing = set(predicate.variables()) - set(variables)
    if missing:
        raise ValueError(f"variables {missing} used by the predicate but not declared")
    if not variables:
        raise ValueError("cannot compile a protocol without input variables")

    if isinstance(predicate, Constant):
        return _constant_protocol(predicate.value, variables)

    if isinstance(predicate, Threshold):
        coefficients: Dict = {v: 0 for v in variables}
        coefficients.update(dict(predicate.coefficients))
        return linear_threshold(coefficients, predicate.constant)

    if isinstance(predicate, Modulo):
        coefficients = {v: 0 for v in variables}
        coefficients.update(dict(predicate.coefficients))
        return modulo_protocol(coefficients, predicate.remainder, predicate.modulus)

    if isinstance(predicate, Not):
        return negation(compile_predicate(predicate.operand, variables)).renamed(
            {}, name=f"compiled({predicate})"
        )

    if isinstance(predicate, And):
        return conjunction(
            compile_predicate(predicate.left, variables),
            compile_predicate(predicate.right, variables),
        ).renamed({}, name=f"compiled({predicate})")

    if isinstance(predicate, Or):
        return disjunction(
            compile_predicate(predicate.left, variables),
            compile_predicate(predicate.right, variables),
        ).renamed({}, name=f"compiled({predicate})")

    raise TypeError(f"cannot compile predicate of type {type(predicate).__name__}")
