"""The 3-state approximate-majority protocol of Angluin-Aspnes-Eisenstat.

The protocol (from "A simple population protocol for fast robust
approximate majority", DISC 2007) has three states: two opinions ``Y``
and ``N`` plus a *blank* intermediate ``b``.  Rules:

* ``Y, N -> Y, b``  — an opinion converts an opposing agent to blank;
* ``Y, N -> N, b``  — the unordered pair fires either way, so the
  protocol is genuinely *nondeterministic*: which opinion survives a
  clash is a coin flip of the scheduler;
* ``Y, b -> Y, Y``  — opinions recruit blanks;
* ``N, b -> N, N``.

With high probability a large population converges to the initial
majority opinion in ``O(n log n)`` interactions — but only *with high
probability*.  The protocol does **not** stably compute majority: from
``Y, Y, N`` the scheduler may fire ``Y, N -> N, b`` twice and then
``N, b -> N, N``, stabilising to the all-``N`` consensus even though
``Y`` held the majority.  The scenario library uses exactly this
wrong-consensus run as a negative-certificate regression: the
``always consensus`` property check must *fail* with a concrete
witness trace.

Outputs: ``O(Y) = 1``, ``O(N) = O(b) = 0``.
"""

from __future__ import annotations

from ..core.multiset import Multiset
from ..core.predicates import majority as majority_predicate
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["approximate_majority"]


def approximate_majority(x: str = "x", y: str = "y") -> PopulationProtocol:
    """The 3-state Angluin-Aspnes-Eisenstat approximate-majority protocol.

    Parameters
    ----------
    x, y:
        Names of the two input variables (mapped to the opinion states
        ``Y`` and ``N`` respectively).

    The returned protocol is nondeterministic (two transitions share
    the pre-pair ``{Y, N}``) and does *not* stably compute ``x > y``;
    see the module docstring.
    """
    if x == y:
        raise ValueError(f"input variables must be distinct, got {x!r} twice")
    transitions = (
        Transition("Y", "N", "Y", "b"),
        Transition("Y", "N", "N", "b"),
        Transition("Y", "b", "Y", "Y"),
        Transition("N", "b", "N", "N"),
    )
    return PopulationProtocol(
        states=("Y", "N", "b"),
        transitions=transitions,
        leaders=Multiset(),
        input_mapping={x: "Y", y: "N"},
        output={"Y": 1, "N": 0, "b": 0},
        name="approximate majority (3 states)",
    )
