"""The classic 4-state majority protocol.

Decides the predicate ``x > y``: are there strictly more agents with
initial opinion ``x`` than with initial opinion ``y``?  This is the
motivating example from the paper's introduction (where the *fast*
protocols of [7] need tens of thousands of states — the 4-state
protocol here is slow but minimal).

States: ``A`` / ``B`` are *active* supporters of x / y; ``a`` / ``b``
are *passive* followers.  Rules:

* ``A, B -> a, b``  — opposite actives annihilate;
* ``A, b -> A, a``  — an active converts opposing followers;
* ``B, a -> B, b``;
* ``a, b -> b, b``  — follower ties break towards ``b`` (so the tie
  case ``x = y``, where all actives annihilate, converges to the
  correct answer "no strict majority of x").

Outputs: ``O(A) = O(a) = 1`` and ``O(B) = O(b) = 0``.
"""

from __future__ import annotations

from ..core.multiset import Multiset
from ..core.predicates import Threshold, majority as majority_predicate
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["majority_protocol", "majority_predicate"]


def majority_protocol(x: str = "x", y: str = "y") -> PopulationProtocol:
    """The 4-state protocol deciding ``x > y``.

    Parameters
    ----------
    x, y:
        Names of the two input variables (mapped to the active states
        ``A`` and ``B`` respectively).
    """
    transitions = (
        Transition("A", "B", "a", "b"),
        Transition("A", "b", "A", "a"),
        Transition("B", "a", "B", "b"),
        Transition("a", "b", "b", "b"),
    )
    return PopulationProtocol(
        states=("A", "B", "a", "b"),
        transitions=transitions,
        leaders=Multiset(),
        input_mapping={x: "A", y: "B"},
        output={"A": 1, "a": 1, "B": 0, "b": 0},
        name="majority (4 states)",
    )
