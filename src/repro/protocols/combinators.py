"""Combinators: negation and product constructions.

Population protocols computing ``phi`` and ``psi`` can be combined
into protocols for ``not phi``, ``phi and psi`` and ``phi or psi``
(Angluin et al. [8]); this closes the threshold/modulo generators
under the boolean operations needed for all Presburger predicates.

* Negation simply flips the output mapping.
* The product construction runs both protocols in lockstep: a product
  agent carries a pair of states, and when two product agents meet
  they interact in both coordinates simultaneously (protocols are
  completed first, so a joint transition always exists).  Outputs are
  combined with the boolean operation.

The product requires both operands to share the same input alphabet
(each input agent must know its initial state in both protocols).

Correctness of the product under fairness is a classical result; the
test suite additionally verifies every combinator exhaustively on
small inputs via the exact bottom-SCC checker.
"""

from __future__ import annotations

import itertools
from typing import Callable, Tuple

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["negation", "conjunction", "disjunction", "product"]


def negation(protocol: PopulationProtocol) -> PopulationProtocol:
    """The protocol computing the negation: outputs flipped."""
    return PopulationProtocol(
        states=protocol.states,
        transitions=protocol.transitions,
        leaders=protocol.leaders,
        input_mapping=protocol.input_mapping,
        output={q: 1 - b for q, b in protocol.output.items()},
        name=f"not({protocol.name})",
    )


def product(
    left: PopulationProtocol,
    right: PopulationProtocol,
    combine: Callable[[int, int], int],
    name: str,
) -> PopulationProtocol:
    """The synchronous product with outputs combined by ``combine``.

    Both protocols are completed (identity transitions added) so every
    pair of product states has a joint transition.  Note the product
    of two deterministic protocols is generally *nondeterministic*:
    when two agents meet, both ways of pairing the left-component
    outcome with the right-component outcome are legitimate (agents
    are anonymous), and both joint transitions are included.

    Raises
    ------
    ProtocolError
        If the input alphabets differ.
    """
    if set(left.input_mapping) != set(right.input_mapping):
        raise ProtocolError(
            f"product requires matching input alphabets, got {set(left.input_mapping)} "
            f"vs {set(right.input_mapping)}"
        )
    lc = left.completed()
    rc = right.completed()

    states: Tuple[Tuple[object, object], ...] = tuple(itertools.product(lc.states, rc.states))
    transitions = []
    for lt in lc.transitions:
        for rt in rc.transitions:
            # The two agents are (lt.p, rt.p) and (lt.q, rt.q); they
            # step to (lt.p2, rt.p2) and (lt.q2, rt.q2).  Pairing the
            # other way round yields the second joint transition.
            transitions.append(
                Transition((lt.p, rt.p), (lt.q, rt.q), (lt.p2, rt.p2), (lt.q2, rt.q2))
            )
            transitions.append(
                Transition((lt.p, rt.q), (lt.q, rt.p), (lt.p2, rt.q2), (lt.q2, rt.p2))
            )

    leaders = Multiset()
    if not (lc.leaders.is_zero and rc.leaders.is_zero):
        raise ProtocolError(
            "product of protocols with leaders is not supported: leader pairing is ambiguous"
        )
    return PopulationProtocol(
        states=states,
        transitions=tuple(dict.fromkeys(transitions)),
        leaders=leaders,
        input_mapping={
            v: (lc.input_mapping[v], rc.input_mapping[v]) for v in lc.input_mapping
        },
        output={
            (lq, rq): combine(lc.output[lq], rc.output[rq])
            for lq, rq in states
        },
        name=name,
    )


def conjunction(left: PopulationProtocol, right: PopulationProtocol) -> PopulationProtocol:
    """Product protocol computing ``phi and psi``."""
    return product(left, right, lambda a, b: a & b, f"and({left.name}, {right.name})")


def disjunction(left: PopulationProtocol, right: PopulationProtocol) -> PopulationProtocol:
    """Product protocol computing ``phi or psi``."""
    return product(left, right, lambda a, b: a | b, f"or({left.name}, {right.name})")
