"""General linear threshold protocols: ``sum_i a_i * x_i >= c``.

The classical construction of Angluin et al. [6, 8] showing that all
threshold predicates (arbitrary integer coefficients, several
variables) are stably computable — the second generator, next to
modulo, of the full Presburger class.

Construction.  Let ``s = max(|c|, max_i |a_i|, 1)``.  Each agent holds
a value in ``[-s, s]`` and a *role*:

* **collector** (``L``): initially everybody, holding its input's
  coefficient.  Two collectors merge: one keeps
  ``q = clamp(u + v, -s, s)``, the other becomes a follower carrying
  the remainder ``r = u + v - q`` and the verdict bit ``[q >= c]``;
* **follower** (``F``): carries a residual value (usually 0) and a
  verdict bit.  A collector meeting a follower absorbs the follower's
  residual the same way and refreshes its bit; two followers do not
  interact.

The number of collectors only ever shrinks (collector+collector
produces one collector) and never reaches zero, so under fairness a
single collector survives, drains every follower residual it can, and
ends holding ``clamp(T)`` where ``T = sum_i a_i x_i`` — except for
saturation leftovers, which are provably on the same side of the
threshold.  The surviving collector then corrects every follower's
bit, yielding the stable consensus ``[T >= c]``.

Keeping an explicit collector role (rather than inferring it from a
non-zero value) is what makes the ``T = 0`` boundary correct: a
value-based scheme strands stale followers when the last two valued
agents cancel, and the exhaustive verifier readily exhibits the bug —
see ``tests/test_threshold_linear.py`` for the regression capturing
this design note.

States: ``2s + 1`` collector values + ``2 (2s + 1)`` follower
(value, bit) pairs = ``3(2s + 1)`` states.  The protocol is
deterministic; unreachable states can be dropped with
``protocol.restricted_to_coverable()``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..core.multiset import Multiset
from ..core.predicates import Threshold
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["linear_threshold", "linear_threshold_predicate"]


def _collector(v: int) -> str:
    return f"L{v:+d}"


def _follower(v: int, b: int) -> str:
    return f"F{v:+d}/{b}"


def linear_threshold(
    coefficients: Mapping[str, int],
    constant: int,
    saturation: int = None,
) -> PopulationProtocol:
    """A protocol deciding ``sum_i a_i * x_i >= c``.

    Parameters
    ----------
    coefficients:
        Maps input variables to integer coefficients (may be negative
        or zero; majority is ``{"x": 1, "y": -1}`` with ``c = 1``).
    constant:
        The threshold ``c``.
    saturation:
        Override for the clamp ``s`` (must be at least
        ``max(|c|, max |a_i|, 1)``); mostly for tests.
    """
    if not coefficients:
        raise ValueError("need at least one input variable")
    s = max(abs(constant), max(abs(a) for a in coefficients.values()), 1)
    if saturation is not None:
        if saturation < s:
            raise ValueError(f"saturation must be >= {s}, got {saturation}")
        s = saturation

    def clamp(value: int) -> int:
        return max(-s, min(s, value))

    def verdict(value: int) -> int:
        return 1 if value >= constant else 0

    values = range(-s, s + 1)
    states: List[str] = [_collector(v) for v in values]
    states += [_follower(v, b) for v in values for b in (0, 1)]

    transitions: List[Transition] = []
    for u in values:
        for v in values:
            if u > v:
                continue
            # collector meets collector: merge, loser becomes follower
            q = clamp(u + v)
            r = u + v - q
            b = verdict(q)
            transitions.append(Transition(_collector(u), _collector(v), _collector(q), _follower(r, b)))
        # collector meets follower: absorb residual, refresh bit
        for v in values:
            for fb in (0, 1):
                q = clamp(u + v)
                r = u + v - q
                b = verdict(q)
                transitions.append(
                    Transition(_collector(u), _follower(v, fb), _collector(q), _follower(r, b))
                )
    # followers never interact (identity; left implicit / completed())

    output: Dict[str, int] = {}
    for v in values:
        output[_collector(v)] = verdict(v)
        for b in (0, 1):
            output[_follower(v, b)] = b

    name_terms = ", ".join(f"{a}*{x}" for x, a in sorted(coefficients.items()))
    return PopulationProtocol(
        states=tuple(states),
        transitions=tuple(transitions),
        leaders=Multiset(),
        input_mapping={x: _collector(clamp(a)) for x, a in coefficients.items()},
        output=output,
        name=f"linear_threshold({name_terms} >= {constant})",
    )


def linear_threshold_predicate(coefficients: Mapping[str, int], constant: int) -> Threshold:
    """The predicate :func:`linear_threshold` computes."""
    return Threshold(dict(coefficients), constant)
