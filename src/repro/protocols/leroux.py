"""Leroux-style leader protocols with a certified unique-leader invariant.

Leroux ("State complexity of protocols with leaders", arXiv:2109.15171)
studies how a distinguished leader changes the state-complexity
landscape: with leaders, ``O(log log n)``-ish state budgets reach
thresholds that leaderless protocols provably cannot.  This module
realises a small exactly-verifiable member of that regime:
``leroux_leader_threshold(k)`` decides ``x >= 2^k`` with ``k + 5``
states and a single leader.

States: the leader ``L``; value tokens ``v0 .. v{k-1}`` where ``v_i``
is worth ``2^i``; a full token ``w`` worth ``2^k``; a spent marker
``0``; the accept state ``T``; and a poison state ``L2`` representing
a double leader.  Rules:

* ``v_i, v_i -> v_{i+1}, 0``  — equal powers combine (carry), with the
  top carry ``v_{k-1}, v_{k-1} -> w, 0`` producing the full token;
* ``L, w -> T, T``  — only the leader may convert a full token into
  acceptance;
* ``T, q -> T, T``  — acceptance floods the population;
* ``L, L -> L2, L2``  — two leaders poison the run.

With the intended single leader the pair ``{L, L}`` never forms, so
``L2`` is uncoverable from every initial configuration — the scenario
library pins this with a ``never reaches L2`` coverability check, a
safety invariant in the spirit of Leroux's unique-leader arguments.
Value conservation gives correctness exactly as in the double-exp
family: ``w`` is producible iff ``x >= 2^k``, and without ``w`` the
leader stays inert, so every fair execution stabilises to the correct
consensus for ``x >= 2^k``.
"""

from __future__ import annotations

from ..core.multiset import Multiset
from ..core.predicates import Threshold, counting
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["leroux_leader_threshold", "leroux_leader_predicate"]


def leroux_leader_predicate(k: int, variable: str = "x") -> Threshold:
    """The predicate ``x >= 2^k`` decided by :func:`leroux_leader_threshold`."""
    if k < 1:
        raise ValueError(f"exponent must be >= 1, got {k}")
    return counting(2 ** k, variable)


def leroux_leader_threshold(k: int, variable: str = "x") -> PopulationProtocol:
    """The single-leader protocol deciding ``x >= 2^k``.

    Parameters
    ----------
    k:
        The exponent, ``k >= 1``.  The protocol has ``k + 5`` states
        (tokens ``v0 .. v{k-1}`` plus ``L``, ``w``, ``0``, ``T``,
        ``L2``) and one leader.
    variable:
        Name of the single input variable.
    """
    if k < 1:
        raise ValueError(f"exponent must be >= 1, got {k}")

    def token(i: int) -> str:
        return f"v{i}"

    states = ("L",) + tuple(token(i) for i in range(k)) + ("w", "0", "T", "L2")
    transitions = []
    for i in range(k - 1):
        transitions.append(Transition(token(i), token(i), token(i + 1), "0"))
    transitions.append(Transition(token(k - 1), token(k - 1), "w", "0"))
    transitions.append(Transition("L", "w", "T", "T"))
    for state in states:
        if state != "T":
            transitions.append(Transition("T", state, "T", "T"))
    transitions.append(Transition("L", "L", "L2", "L2"))
    output = {state: 0 for state in states}
    output["T"] = 1
    return PopulationProtocol(
        states=states,
        transitions=tuple(transitions),
        leaders=Multiset({"L": 1}),
        input_mapping={variable: token(0)},
        output=output,
        name=f"leroux leader threshold (k={k}, x >= {2 ** k})",
    )
