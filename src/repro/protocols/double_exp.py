"""Doubly-exponential thresholds from tiny state counts (Czerner 2022).

Czerner's construction ("Brief announcement: population protocols
decide double-exponential thresholds", arXiv:2204.02115) shows that
``O(s)`` states suffice to decide ``x >= 2^(2^s)`` — a
double-exponential threshold, beating the single-exponential
``2^(2^s)``-style lower-bound landscape the source paper maps for
*leaderless* protocols with sub-quadratic bounds.

This module realises the power-combining core of that idea as an exact,
small-instance-verifiable family: ``double_exp_threshold(k)`` decides
the counting predicate ``x >= 2^(2^k)`` with ``2^k + 2`` states.  The
state budget is exponential in ``k`` (the full Czerner construction
compresses it to ``O(k)`` with a clock gadget), but the decided
threshold is *double*-exponential in ``k``, so the family exhibits the
double-exponential growth that stresses the busy-beaver bounds — while
staying small enough at ``k = 1, 2`` for exhaustive verification.

States (writing ``E = 2^k``): value tokens ``v0 .. v{E-1}`` where
``v_e`` is worth ``2^e``, a spent marker ``0``, and an accept state
``T`` worth ``2^E``.  Rules:

* ``v_e, v_e -> v_{e+1}, 0``  — equal powers combine (carry);
* ``v_{E-1}, v_{E-1} -> T, 0``  — the final carry reaches ``2^E``;
* ``T, q -> T, T``  — acceptance floods the population.

Total token value is conserved by the carries, so ``T`` is producible
iff ``x >= 2^E``; a ``T``-free stuck configuration is exactly the
binary representation of ``x`` with all bits below ``E``.  Every fair
execution therefore stabilises to the correct consensus, and the
protocol is eventually silent.
"""

from __future__ import annotations

from ..core.multiset import Multiset
from ..core.predicates import Threshold, counting
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["double_exp_threshold", "double_exp_predicate"]


def double_exp_predicate(k: int, variable: str = "x") -> Threshold:
    """The predicate ``x >= 2^(2^k)`` decided by :func:`double_exp_threshold`."""
    if k < 1:
        raise ValueError(f"level must be >= 1, got {k}")
    return counting(2 ** (2 ** k), variable)


def double_exp_threshold(k: int, variable: str = "x") -> PopulationProtocol:
    """The power-combining protocol deciding ``x >= 2^(2^k)``.

    Parameters
    ----------
    k:
        The level parameter, ``1 <= k <= 6``.  The protocol has
        ``2^k + 2`` states and decides the threshold ``2^(2^k)``:
        ``k = 1`` gives 4 states for ``x >= 4``, ``k = 2`` gives
        6 states for ``x >= 16``.  Levels above 6 would need more than
        66 states and a threshold beyond ``2^64``; the cap keeps the
        construction in the exactly-analysable regime.
    variable:
        Name of the single input variable.
    """
    if k < 1:
        raise ValueError(f"level must be >= 1, got {k}")
    if k > 6:
        raise ValueError(f"level must be <= 6, got {k}")
    exponent = 2 ** k

    def token(e: int) -> str:
        return f"v{e}"

    states = tuple(token(e) for e in range(exponent)) + ("0", "T")
    transitions = []
    for e in range(exponent - 1):
        transitions.append(Transition(token(e), token(e), token(e + 1), "0"))
    transitions.append(Transition(token(exponent - 1), token(exponent - 1), "T", "0"))
    for state in states:
        if state != "T":
            transitions.append(Transition("T", state, "T", "T"))
    output = {state: 0 for state in states}
    output["T"] = 1
    return PopulationProtocol(
        states=states,
        transitions=tuple(transitions),
        leaders=Multiset(),
        input_mapping={variable: token(0)},
        output=output,
        name=f"double-exp threshold (k={k}, x >= {2 ** exponent})",
    )
