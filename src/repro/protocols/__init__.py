"""Verified protocol constructions: the lower-bound witnesses and baselines."""

from .approx_majority import approximate_majority
from .builders import ProtocolBuilder
from .combinators import conjunction, disjunction, negation, product
from .compiler import compile_predicate
from .double_exp import double_exp_predicate, double_exp_threshold
from .intervals import (
    exact_predicate,
    exact_protocol,
    interval_predicate,
    interval_protocol,
    upper_bound_predicate,
    upper_bound_protocol,
)
from .leader_election import leader_election, unique_leader_certified
from .leaders import leader_binary_threshold, leader_unary_threshold
from .leroux import leroux_leader_predicate, leroux_leader_threshold
from .majority import majority_protocol
from .modulo import modulo_protocol
from .threshold_linear import linear_threshold, linear_threshold_predicate
from .threshold_binary import binary_state_count, binary_threshold, example_2_1_binary
from .threshold_flat import example_2_1_flat, flat_threshold

__all__ = [
    "ProtocolBuilder",
    "flat_threshold",
    "example_2_1_flat",
    "binary_threshold",
    "example_2_1_binary",
    "binary_state_count",
    "majority_protocol",
    "modulo_protocol",
    "leader_unary_threshold",
    "leader_binary_threshold",
    "approximate_majority",
    "double_exp_threshold",
    "double_exp_predicate",
    "leroux_leader_threshold",
    "leroux_leader_predicate",
    "negation",
    "conjunction",
    "disjunction",
    "product",
    "interval_protocol",
    "interval_predicate",
    "exact_protocol",
    "exact_predicate",
    "upper_bound_protocol",
    "upper_bound_predicate",
    "linear_threshold",
    "linear_threshold_predicate",
    "compile_predicate",
    "leader_election",
    "unique_leader_certified",
]
