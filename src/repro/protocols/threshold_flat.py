"""The flat threshold protocol ``P_k`` of Example 2.1 (and its generalisation).

``P_k`` computes ``x >= 2^k`` with ``2^k + 1`` states: each agent
stores a number, initially 1; when two agents meet, one stores the
(capped) sum and the other stores 0; once an agent reaches the cap,
the accepting state spreads to everybody.

The construction works verbatim for an arbitrary threshold ``eta``
(not only powers of two), which is how :func:`flat_threshold` exposes
it: ``eta + 1`` states for ``x >= eta``.  It is the natural *unary*
baseline against which the succinct protocols of
:mod:`repro.protocols.threshold_binary` are measured — the succinctness
gap between the two is precisely the subject of the paper.
"""

from __future__ import annotations

from ..core.multiset import Multiset
from ..core.predicates import Threshold, counting
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["flat_threshold", "example_2_1_flat"]


def flat_threshold(eta: int, variable: str = "x") -> PopulationProtocol:
    """The protocol ``P_eta``: ``x >= eta`` with ``eta + 1`` states.

    States are the integers ``0 .. eta``; ``I(x) = 1``; ``O(a) = 1``
    iff ``a = eta``; transitions:

    * ``a, b -> 0, a + b``  when ``a + b < eta``;
    * ``a, b -> eta, eta``  when ``a + b >= eta``.

    Exactly Example 2.1 of the paper with ``eta = 2^k``; the protocol
    is deterministic and complete by construction.

    Parameters
    ----------
    eta:
        The threshold; must be at least 1.
    variable:
        Name of the unique input variable (default ``"x"``).
    """
    if eta < 1:
        raise ValueError(f"threshold must be >= 1, got {eta}")
    states = tuple(range(eta + 1))
    transitions = []
    for a in states:
        for b in states:
            if a > b:
                continue
            if a + b >= eta:
                transitions.append(Transition(a, b, eta, eta))
            else:
                transitions.append(Transition(a, b, 0, a + b))
    protocol = PopulationProtocol(
        states=states,
        transitions=tuple(transitions),
        leaders=Multiset(),
        input_mapping={variable: 1},
        output={a: 1 if a == eta else 0 for a in states},
        name=f"flat_threshold(eta={eta})",
    )
    return protocol


def example_2_1_flat(k: int) -> PopulationProtocol:
    """The paper's ``P_k`` verbatim: ``x >= 2^k`` with ``2^k + 1`` states."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    protocol = flat_threshold(2**k)
    return protocol.renamed({}, name=f"P_{k} (Example 2.1)")


def flat_threshold_predicate(eta: int, variable: str = "x") -> Threshold:
    """The predicate ``x >= eta`` that :func:`flat_threshold` computes."""
    return counting(eta, variable)
