"""Derived threshold predicates: intervals, exact counts, strict bounds.

Convenience constructions assembled from the verified threshold family
and the boolean combinators — the `Presburger closure` in action:

* :func:`interval_protocol` — ``low <= x <= high``;
* :func:`exact_protocol` — ``x = k``;
* :func:`upper_bound_protocol` — ``x <= high`` (negated threshold).

These keep the `O(log)` state complexity of their components (times the
product blow-up), and every returned protocol carries its predicate via
:func:`interval_predicate` et al. for direct verification.
"""

from __future__ import annotations

from ..core.predicates import And, Not, Predicate, counting
from ..core.protocol import PopulationProtocol
from .combinators import conjunction, negation
from .threshold_binary import binary_threshold

__all__ = [
    "interval_protocol",
    "interval_predicate",
    "exact_protocol",
    "exact_predicate",
    "upper_bound_protocol",
    "upper_bound_predicate",
]


def upper_bound_protocol(high: int, variable: str = "x") -> PopulationProtocol:
    """A protocol for ``x <= high`` (the negation of ``x >= high + 1``)."""
    if high < 0:
        raise ValueError(f"upper bound must be >= 0, got {high}")
    protocol = negation(binary_threshold(high + 1, variable))
    return protocol.renamed({}, name=f"upper_bound(x <= {high})")


def upper_bound_predicate(high: int, variable: str = "x") -> Predicate:
    """The predicate ``x <= high``."""
    return Not(counting(high + 1, variable))


def interval_protocol(low: int, high: int, variable: str = "x") -> PopulationProtocol:
    """A protocol for ``low <= x <= high`` via the product construction."""
    if not 1 <= low <= high:
        raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
    protocol = conjunction(binary_threshold(low, variable), upper_bound_protocol(high, variable))
    return protocol.renamed({}, name=f"interval({low} <= x <= {high})")


def interval_predicate(low: int, high: int, variable: str = "x") -> Predicate:
    """The predicate ``low <= x <= high``."""
    return And(counting(low, variable), upper_bound_predicate(high, variable))


def exact_protocol(k: int, variable: str = "x") -> PopulationProtocol:
    """A protocol for ``x = k`` (the width-zero interval)."""
    protocol = interval_protocol(k, k, variable)
    return protocol.renamed({}, name=f"exact(x = {k})")


def exact_predicate(k: int, variable: str = "x") -> Predicate:
    """The predicate ``x = k``."""
    return interval_predicate(k, k, variable)
