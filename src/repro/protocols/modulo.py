"""Modulo (remainder) protocols: ``sum_i a_i * x_i = r (mod m)``.

Together with thresholds, modulo predicates generate all Presburger
predicates under boolean combinations (Section 2.3 of the paper points
at this normal form).  The construction is the standard accumulator
protocol:

* an *active* agent holds a partial sum ``v`` modulo ``m``;
* two actives merge: one keeps the sum ``(u + v) mod m``, the other
  becomes a *passive* follower remembering the merger's verdict;
* an active meeting a passive updates the passive's belief to the
  active's current verdict.

Exactly one active survives under fairness, holding the full sum
``sum_i a_i x_i mod m``, and it eventually overwrites every passive's
belief with the true verdict.  States: ``m`` actives + 2 passives.
"""

from __future__ import annotations

from typing import Mapping

from ..core.multiset import Multiset
from ..core.predicates import Modulo
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["modulo_protocol", "modulo_predicate"]


def modulo_protocol(
    coefficients: Mapping[str, int],
    remainder: int,
    modulus: int,
) -> PopulationProtocol:
    """A protocol deciding ``sum_i a_i * x_i = r (mod m)``.

    Parameters
    ----------
    coefficients:
        Maps each input variable to its coefficient ``a_i``.
    remainder:
        The target remainder ``r`` (reduced modulo ``m``).
    modulus:
        The modulus ``m >= 1``.

    Returns a protocol with ``m + 2`` states (``m = 1`` yields the
    always-true predicate with 3 states).
    """
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    remainder %= modulus

    def active(v: int) -> str:
        return f"s{v}"

    def passive(b: int) -> str:
        return f"p{b}"

    def verdict(v: int) -> int:
        return 1 if v == remainder else 0

    states = tuple(active(v) for v in range(modulus)) + (passive(0), passive(1))
    transitions = []
    for u in range(modulus):
        for v in range(u, modulus):
            total = (u + v) % modulus
            transitions.append(Transition(active(u), active(v), active(total), passive(verdict(total))))
        for b in (0, 1):
            if verdict(u) != b:
                transitions.append(Transition(active(u), passive(b), active(u), passive(verdict(u))))
    output = {active(v): verdict(v) for v in range(modulus)}
    output[passive(0)] = 0
    output[passive(1)] = 1
    return PopulationProtocol(
        states=states,
        transitions=tuple(transitions),
        leaders=Multiset(),
        input_mapping={var: active(coeff % modulus) for var, coeff in coefficients.items()},
        output=output,
        name=f"modulo({dict(coefficients)} = {remainder} mod {modulus})",
    )


def modulo_predicate(
    coefficients: Mapping[str, int],
    remainder: int,
    modulus: int,
) -> Modulo:
    """The predicate :func:`modulo_protocol` computes."""
    return Modulo(coefficients, remainder, modulus)
