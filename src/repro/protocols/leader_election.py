"""Leader election: the pairwise-elimination protocol.

Not a predicate protocol — leader election is the other foundational
population-protocol task (and the subject of the time/space trade-off
literature the paper's introduction surveys [2, 3, 4, 17, 20]).  The
classic protocol is two states:

    ``L, L -> L, F``        (two leaders meet: one survives)
    ``L, F -> L, F``        (a leader ignores followers)
    ``F, F -> F, F``

Starting from all-``L``, the number of leaders is non-increasing and
strictly decreases whenever two leaders meet; fairness drives it to
exactly one.  Expected convergence is ``Theta(n)`` parallel time — the
coupon-collector-free but quadratic-in-pair-probability regime, which
:func:`repro.simulation.convergence.measure_convergence` exhibits and
the tests assert.

The protocol *stably computes* the constant-true predicate (every
state outputs 1), so it also slots into the predicate machinery; its
interesting invariant — exactly one leader in every terminal
configuration — is checked exactly via the reachability graph in
:func:`unique_leader_certified`.
"""

from __future__ import annotations

from typing import Optional

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, Transition
from ..reachability.graph import ReachabilityGraph

__all__ = ["leader_election", "unique_leader_certified"]


def leader_election(variable: str = "x") -> PopulationProtocol:
    """The 2-state pairwise-elimination leader election protocol."""
    return PopulationProtocol(
        states=("L", "F"),
        transitions=(Transition("L", "L", "L", "F"),),
        leaders=Multiset(),
        input_mapping={variable: "L"},
        output={"L": 1, "F": 1},
        name="leader_election (2 states)",
    )


def unique_leader_certified(
    protocol: PopulationProtocol,
    population: int,
    node_budget: int = 2_000_000,
) -> bool:
    """Exactly verify the election property for a population size.

    Checks, over the full reachability graph from ``IC(population)``:

    * every reachable configuration has at least one leader;
    * every *terminal* configuration (no non-silent transition) has
      exactly one;
    * every configuration can still reach a terminal one (progress).
    """
    indexed = protocol.indexed()
    leader_index = indexed.index["L"]
    root = indexed.initial_counts(population)
    graph = ReachabilityGraph.from_roots(protocol, [root], node_budget=node_budget)

    terminals = [node for node in graph.nodes if not graph.successors_of(node)]
    if not terminals:
        return False
    for node in graph.nodes:
        if node[leader_index] < 1:
            return False
    for node in terminals:
        if node[leader_index] != 1:
            return False
    reach_terminal = graph.backward_closure(terminals)
    return reach_terminal == graph.nodes
