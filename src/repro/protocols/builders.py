"""A fluent builder for population protocols.

Defining a protocol through :class:`~repro.core.protocol.PopulationProtocol`
directly requires assembling all six components up front.  For
hand-written protocols (examples, tests, exploratory work) the
:class:`ProtocolBuilder` is more convenient:

>>> from repro.protocols.builders import ProtocolBuilder
>>> protocol = (
...     ProtocolBuilder("my-majority")
...     .state("A", output=1).state("B", output=0)
...     .state("a", output=1).state("b", output=0)
...     .rule("A", "B", "a", "b")
...     .rule("A", "b", "A", "a")
...     .rule("B", "a", "B", "b")
...     .rule("a", "b", "b", "b")
...     .input("x", "A").input("y", "B")
...     .build()
... )
>>> protocol.num_states
4
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["ProtocolBuilder"]

State = Hashable


class ProtocolBuilder:
    """Incrementally assemble a :class:`PopulationProtocol`.

    States must be declared (with their output) before being used in
    rules, inputs or leaders; :meth:`build` validates the result.
    """

    def __init__(self, name: str = "protocol"):
        self._name = name
        self._states: Dict[State, int] = {}
        self._transitions: List[Transition] = []
        self._inputs: Dict[Hashable, State] = {}
        self._leaders: Dict[State, int] = {}

    def state(self, name: State, output: int) -> "ProtocolBuilder":
        """Declare a state with its output value (0 or 1)."""
        if name in self._states and self._states[name] != output:
            raise ProtocolError(f"state {name!r} redeclared with a different output")
        self._states[name] = output
        return self

    def states(self, names, output: int) -> "ProtocolBuilder":
        """Declare several states sharing one output value."""
        for name in names:
            self.state(name, output)
        return self

    def rule(self, p: State, q: State, p2: State, q2: State) -> "ProtocolBuilder":
        """Add the transition ``p, q -> p2, q2``."""
        for s in (p, q, p2, q2):
            if s not in self._states:
                raise ProtocolError(f"rule uses undeclared state {s!r}")
        self._transitions.append(Transition(p, q, p2, q2))
        return self

    def input(self, variable: Hashable, state: State) -> "ProtocolBuilder":
        """Map an input variable to its initial state."""
        if state not in self._states:
            raise ProtocolError(f"input maps to undeclared state {state!r}")
        self._inputs[variable] = state
        return self

    def leader(self, state: State, count: int = 1) -> "ProtocolBuilder":
        """Add ``count`` leader agents in ``state``."""
        if state not in self._states:
            raise ProtocolError(f"leader in undeclared state {state!r}")
        self._leaders[state] = self._leaders.get(state, 0) + count
        return self

    def build(self, complete: bool = False) -> PopulationProtocol:
        """Produce the protocol; ``complete=True`` adds identity rules."""
        protocol = PopulationProtocol(
            states=tuple(self._states),
            transitions=tuple(self._transitions),
            leaders=Multiset(self._leaders),
            input_mapping=self._inputs,
            output=dict(self._states),
            name=self._name,
        )
        return protocol.completed() if complete else protocol
