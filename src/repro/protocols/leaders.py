"""Protocols with leaders.

Leaders are auxiliary agents present in every initial configuration:
``IC(v) = L + sum_x v(x) * I(x)`` with ``L != 0``.  The paper's
Section 4 bound applies to this class, and initial configurations are
no longer linear in the input (``IC(a + b) != IC(a) + IC(b)``), which
is exactly why the Section 5 analysis fails for them.

This module provides two verified leader families used by the test
suite, the examples and the Section-4 experiments:

* :func:`leader_unary_threshold` — a single leader counts input agents
  one by one up to ``eta`` (``eta + 3`` states, 1 leader);
* :func:`leader_binary_threshold` — a single leader drives a binary
  counter distributed over ``ceil(log2(eta+1))`` *bit leaders*
  (``O(log eta)`` states, ``O(log eta)`` leaders), exercising
  multi-leader initial configurations.

Neither family is succinct beyond the leaderless ``O(log eta)`` bound:
the doubly-exponential leader construction of Blondin et al. [11] is a
substantial separate development that the paper under reproduction
only cites for motivation (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.multiset import Multiset
from ..core.predicates import Threshold, counting
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["leader_unary_threshold", "leader_binary_threshold"]


def leader_unary_threshold(eta: int, variable: str = "x") -> PopulationProtocol:
    """``x >= eta`` with one leader counting agents in unary.

    States: leader counters ``L0 .. L(eta-1)``, the input state ``u``,
    the spent state ``d``, and the absorbing accepting state ``T``.
    Rules: ``Li, u -> L(i+1), d`` (with ``L(eta) = T``), and
    ``T, q -> T, T``.  The single leader consumes input agents one at a
    time; it reaches ``T`` iff at least ``eta`` inputs exist.

    ``eta + 3`` states; deterministic.
    """
    if eta < 1:
        raise ValueError(f"threshold must be >= 1, got {eta}")

    def counter(i: int) -> str:
        return "T" if i == eta else f"L{i}"

    states: List[str] = [counter(i) for i in range(eta)] + ["u", "d", "T"]
    transitions = []
    for i in range(eta):
        transitions.append(Transition(counter(i), "u", counter(i + 1), "d"))
    for s in states:
        if s != "T":
            transitions.append(Transition("T", s, "T", "T"))
    output = {s: 1 if s == "T" else 0 for s in states}
    return PopulationProtocol(
        states=tuple(states),
        transitions=tuple(transitions),
        leaders=Multiset.singleton("L0"),
        input_mapping={variable: "u"},
        output=output,
        name=f"leader_unary_threshold(eta={eta})",
    )


def leader_binary_threshold(eta: int, variable: str = "x") -> PopulationProtocol:
    """``x >= eta`` with a distributed binary counter of bit leaders.

    There are ``w = ceil(log2(eta + 1))`` *bit leaders*; bit leader
    ``i`` is in state ``b(i, 0)`` or ``b(i, 1)``.  Input agents inject
    a carry at bit 0 (``b(0, 0), u -> b(0, 1), d`` /
    ``b(0, 1), u -> b(0, 0), k1``); carry tokens ``k(i)`` ripple up
    (``b(i, 0), k(i) -> b(i, 1), d`` and
    ``b(i, 1), k(i) -> b(i, 0), k(i+1)``).  A carry out of the top bit
    can only occur after ``2^w > eta`` increments — but we must accept
    exactly at ``eta``, so acceptance is triggered instead by the
    *detector* chain: when the counter value reaches ``eta`` every bit
    leader matches ``eta``'s bit pattern, which a token cannot observe
    atomically.  We therefore pick ``eta = 2^w`` shape-free semantics:
    acceptance fires when a carry leaves bit ``w - 1`` after exactly
    ``2^(w-1) <= eta`` — to stay *exact* for arbitrary ``eta`` the
    counter is simply offset: it starts at ``2^w - eta``, so the first
    carry out of the top bit occurs exactly at the ``eta``-th
    increment.  The overflow token converts everybody to ``T``.

    ``3w + 4`` states (bit pairs + carries + ``u, d, T``), ``w``
    leaders; deterministic.  Verified exhaustively in the tests.
    """
    if eta < 1:
        raise ValueError(f"threshold must be >= 1, got {eta}")
    width = eta.bit_length()  # 2^width > eta always holds
    start = 2**width - eta  # counter offset: overflow after exactly eta increments

    def bit(i: int, v: int) -> str:
        return f"b{i}={v}"

    def carry(i: int) -> str:
        return "T" if i == width else f"k{i}"

    states: List[str] = []
    for i in range(width):
        states.extend([bit(i, 0), bit(i, 1)])
    states.extend(carry(i) for i in range(1, width))
    states.extend(["u", "d", "T"])

    transitions: List[Transition] = []
    # input agents act as the carry into bit 0
    transitions.append(Transition(bit(0, 0), "u", bit(0, 1), "d"))
    transitions.append(Transition(bit(0, 1), "u", bit(0, 0), carry(1)))
    # carry ripple
    for i in range(1, width):
        transitions.append(Transition(bit(i, 0), carry(i), bit(i, 1), "d"))
        transitions.append(Transition(bit(i, 1), carry(i), bit(i, 0), carry(i + 1)))
    # acceptance spreads
    for s in states:
        if s != "T":
            transitions.append(Transition("T", s, "T", "T"))

    leaders = Multiset({bit(i, (start >> i) & 1): 1 for i in range(width)})
    output = {s: 1 if s == "T" else 0 for s in states}
    return PopulationProtocol(
        states=tuple(states),
        transitions=tuple(transitions),
        leaders=leaders,
        input_mapping={variable: "u"},
        output=output,
        name=f"leader_binary_threshold(eta={eta})",
    )
