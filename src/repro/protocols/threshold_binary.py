"""Succinct (binary) threshold protocols: ``O(log eta)`` states.

Two constructions live here:

* :func:`example_2_1_binary` — the paper's ``P'_k`` verbatim: states
  ``{0, 2^0, ..., 2^k}``, doubling transitions
  ``2^i, 2^i -> 0, 2^(i+1)`` and the absorbing accepting state ``2^k``.
  It computes ``x >= 2^k`` with ``k + 2`` states (the paper's prose
  says ``k + 1``; the displayed state set ``{0, 2^0, ..., 2^k}`` has
  ``k + 2`` elements — we implement the displayed set and report the
  true count).

* :func:`binary_threshold` — a generalisation to *arbitrary*
  thresholds ``eta`` with at most ``2*floor(log2 eta) + 3`` states,
  in the spirit of the succinct protocols of Blondin, Esparza &
  Jaax [12] that witness ``BB(n) in Omega(2^n)`` (Theorem 2.2).

The general construction.  Write ``eta`` in binary with most
significant bit ``k``.  Agents hold either nothing (``zero``), a power
of two (``2^i``, obtained by combining equal powers), or a *collected
prefix* of ``eta`` (``c_j`` = the number formed by bits ``k..j`` of
``eta``).  Invariant: the total value across agents equals the input
``x`` (until acceptance).  Rules:

* combine:  ``2^i, 2^i -> 2^(i+1), zero``           (for ``i < k``)
* collect:  ``c_(j), 2^(j-1) -> c_(j-1), zero``     (when bit ``j-1`` of ``eta`` is 1)
* accept on overflow: a collector holding prefix ``c_j`` that meets a
  power ``2^m`` with ``m >= j`` proves ``x > eta``
  (``prefix_j + 2^m >= prefix_j + 2^j > eta``) — both become accepting;
* accept on completion: the collector that has collected every bit of
  ``eta`` holds exactly ``eta`` and converts everybody;
* two collectors prove ``x >= 2^(k+1) > eta`` — accepting.

Soundness: every accepting rule fires only when the *pair's* combined
value already certifies ``x >= eta`` (total value is invariant).
Completeness: in any non-accepting configuration with total value
``>= eta``, either two equal powers exist (combine), or the collector's
next needed bit is present (collect), or an overflow pair exists — a
counting argument shows stuck configurations have value ``< eta``.
The test suite verifies the protocol exhaustively for a battery of
thresholds and all inputs up to beyond ``eta``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.multiset import Multiset
from ..core.predicates import Threshold, counting
from ..core.protocol import PopulationProtocol, Transition

__all__ = ["binary_threshold", "example_2_1_binary", "binary_state_count"]

ZERO = "zero"


def _power(i: int) -> str:
    return f"2^{i}"


def _collector(j: int) -> str:
    return f"c{j}"


def binary_threshold(eta: int, variable: str = "x") -> PopulationProtocol:
    """A leaderless protocol for ``x >= eta`` with ``O(log eta)`` states.

    See the module docstring for the construction.  The returned
    protocol is deterministic; call ``.completed()`` for the formally
    complete version (identity transitions added).

    Parameters
    ----------
    eta:
        Threshold, at least 1.
    variable:
        Name of the unique input variable.
    """
    if eta < 1:
        raise ValueError(f"threshold must be >= 1, got {eta}")
    k = eta.bit_length() - 1
    bits = [(eta >> j) & 1 for j in range(k + 1)]  # bits[j] = b_j

    # state_at_level[j] = the state of an agent holding prefix_j
    # (bits k..j of eta, as an integer).  Levels with b_(j) = 0 merge
    # with the level above; level k is the plain power 2^k.
    state_at_level: Dict[int, str] = {k: _power(k)}
    for j in range(k - 1, -1, -1):
        state_at_level[j] = _collector(j) if bits[j] else state_at_level[j + 1]

    accept = state_at_level[0]

    # Lowest level represented by each distinct collector state.
    lowest_level: Dict[str, int] = {}
    for j in range(k, -1, -1):
        lowest_level[state_at_level[j]] = j

    collectors = list(dict.fromkeys(state_at_level[j] for j in range(k, -1, -1)))

    transitions: List[Transition] = []
    # combine equal powers
    for i in range(k):
        transitions.append(Transition(_power(i), _power(i), _power(i + 1), ZERO))
    # collector rules
    for s in collectors:
        j_lo = lowest_level[s]
        if s == accept:
            continue  # handled below: accept converts everything
        # collect the next needed bit of eta
        transitions.append(Transition(s, _power(j_lo - 1), state_at_level[j_lo - 1], ZERO))
        # overflow: prefix + 2^m > eta for any m >= j_lo
        for m in range(j_lo, k + 1):
            transitions.append(Transition(s, _power(m), accept, accept))
        # two collectors hold >= 2^(k+1) > eta together
        for other in collectors:
            if other != accept:
                transitions.append(Transition(s, other, accept, accept))

    states: List[str] = [_power(i) for i in range(k + 1)]
    states.extend(s for s in collectors if s not in states)
    needs_zero = any(ZERO in (t.p2, t.q2) for t in transitions)
    if needs_zero:
        states.append(ZERO)
    # accept converts every other agent (and absorbs stray accepts)
    for s in states:
        transitions.append(Transition(accept, s, accept, accept))

    # Deduplicate, keeping the FIRST rule for each unordered pre-pair
    # so the protocol stays deterministic.  Overlaps only occur between
    # equivalent accepting rules, so the choice is immaterial.
    by_pre: Dict[Tuple[str, str], Transition] = {}
    for t in transitions:
        by_pre.setdefault((t.p, t.q), t)

    return PopulationProtocol(
        states=tuple(states),
        transitions=tuple(by_pre.values()),
        leaders=Multiset(),
        input_mapping={variable: _power(0)},
        output={s: 1 if s == accept else 0 for s in states},
        name=f"binary_threshold(eta={eta})",
    )


def example_2_1_binary(k: int) -> PopulationProtocol:
    """The paper's ``P'_k``: ``x >= 2^k`` over ``{0, 2^0, ..., 2^k}``.

    For ``k >= 1`` this coincides with ``binary_threshold(2^k)`` up to
    state names: doubling transitions plus the absorbing accepting
    state ``2^k``.  Exposed separately so experiment E1 can report the
    exact family of Example 2.1.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    protocol = binary_threshold(2**k)
    return protocol.renamed({}, name=f"P'_{k} (Example 2.1)")


def binary_state_count(eta: int) -> int:
    """Number of states of :func:`binary_threshold` without building it.

    Equals ``(k+1) + (popcount(eta) - 1) + [a zero state is needed]``
    where ``k = floor(log2 eta)`` — at most ``2k + 3``.
    """
    k = eta.bit_length() - 1
    popcount = bin(eta).count("1")
    needs_zero = k >= 1  # any combine or collect rule produces `zero`
    return (k + 1) + (popcount - 1) + (1 if needs_zero else 0)


def binary_threshold_predicate(eta: int, variable: str = "x") -> Threshold:
    """The predicate ``x >= eta`` that :func:`binary_threshold` computes."""
    return counting(eta, variable)
