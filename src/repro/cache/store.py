"""The two-tier cache store and the process-wide active-store plumbing.

Tier 1 is an in-process LRU of *decoded* result objects: a repeated
call inside one process (``repro analyze`` runs Karp–Miller through
several sub-analyses) pays neither JSON decode nor object rebuild.
Tier 2 is an on-disk directory of schema-versioned JSON entries under
``~/.cache/repro`` (respecting ``XDG_CACHE_HOME`` and
``REPRO_CACHE_DIR``), shared across processes and sessions.

Disk entries are written atomically — serialise to a unique temp file
in the same directory, then ``os.replace`` — so parallel workers and
concurrent CLI invocations can race on the same key and the loser
simply overwrites with identical bytes.  Every entry carries a SHA-256
checksum of its payload; a truncated, tampered or schema-incompatible
entry is counted, unlinked and treated as a miss (silent recompute),
never surfaced as a crash or garbage result.

Entries live inside a ``v{CACHE_SCHEMA_VERSION}`` subdirectory, so a
schema bump orphans (rather than misreads) old entries; ``clear()``
sweeps every version directory.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import shutil
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from ..obs.metrics import get_metrics
from .fingerprint import _digest

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ENTRY_KIND",
    "MISS",
    "CacheStore",
    "default_cache_dir",
    "active_store",
    "set_store",
    "use_store",
    "cache_disabled",
    "reset_store_from_env",
]

CACHE_SCHEMA_VERSION = 1
"""Entry layout version; bump procedure documented in docs/tutorial.md §12."""

ENTRY_KIND = "repro-analysis-cache"

_VERSION_DIR = re.compile(r"^v\d+$")


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cache miss>"


MISS = _Miss()


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    if not xdg:
        xdg = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro")


def payload_checksum(payload: Any) -> str:
    """Stable SHA-256 over a JSON-serialisable payload."""
    return _digest("repro-cache-payload", payload)


class CacheStore:
    """One cache location: in-process LRU over an on-disk entry directory.

    ``memory_entries=0`` disables the memory tier (every hit decodes
    from disk — what the warm benchmark workloads measure);
    ``disk=False`` turns the store into a pure in-process memoiser.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        memory_entries: int = 256,
        disk: bool = True,
    ):
        self.directory = directory or default_cache_dir()
        self.memory_entries = memory_entries
        self.disk = disk
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._tmp_counter = itertools.count()

    # -- layout --------------------------------------------------------

    @property
    def entries_dir(self) -> str:
        return os.path.join(self.directory, f"v{CACHE_SCHEMA_VERSION}")

    def entry_path(self, analysis: str, key: str) -> str:
        return os.path.join(self.entries_dir, f"{analysis}-{key}.json")

    # -- memory tier ---------------------------------------------------

    def get_object(self, key: str) -> Any:
        """Tier-1 lookup: the decoded object, or :data:`MISS`."""
        if self.memory_entries <= 0 or key not in self._memory:
            return MISS
        self._memory.move_to_end(key)
        return self._memory[key]

    def put_object(self, key: str, obj: Any) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[key] = obj
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            get_metrics("cache").add("evictions")

    # -- disk tier -----------------------------------------------------

    def get_payload(self, analysis: str, key: str) -> Any:
        """Tier-2 lookup: the validated payload, or :data:`MISS`.

        Any defect — unreadable file, invalid JSON, wrong kind or
        schema, checksum mismatch — counts as a corrupt entry, unlinks
        the file and returns a miss.
        """
        if not self.disk:
            return MISS
        path = self.entry_path(analysis, key)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return MISS
        except OSError:
            return MISS
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
            if entry.get("kind") != ENTRY_KIND:
                raise ValueError(f"wrong entry kind {entry.get('kind')!r}")
            if entry.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"wrong schema {entry.get('schema')!r}")
            payload = entry["payload"]
            if entry.get("checksum") != payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
        except (ValueError, KeyError, TypeError):
            get_metrics("cache").add("corrupt_entries")
            self.invalidate(analysis, key)
            return MISS
        return payload

    def put_payload(self, analysis: str, key: str, fingerprint: str, payload: Any) -> bool:
        """Atomically write one entry; returns False on I/O failure."""
        if not self.disk:
            return False
        entry = {
            "kind": ENTRY_KIND,
            "schema": CACHE_SCHEMA_VERSION,
            "analysis": analysis,
            "fingerprint": fingerprint,
            "created_unix": round(time.time(), 3),
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        path = self.entry_path(analysis, key)
        tmp = f"{path}.tmp.{os.getpid()}.{next(self._tmp_counter)}"
        try:
            os.makedirs(self.entries_dir, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            get_metrics("cache").add("write_errors")
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def invalidate(self, analysis: str, key: str) -> None:
        """Drop one entry from both tiers (corruption recovery path)."""
        self._memory.pop(key, None)
        try:
            os.unlink(self.entry_path(analysis, key))
        except OSError:
            pass

    # -- maintenance (the `repro cache` surface) -----------------------

    def clear(self) -> int:
        """Remove every entry (all schema versions); returns the count."""
        removed = 0
        self._memory.clear()
        try:
            children = os.listdir(self.directory)
        except OSError:
            return 0
        for child in children:
            if not _VERSION_DIR.match(child):
                continue
            version_dir = os.path.join(self.directory, child)
            try:
                removed += sum(
                    1 for name in os.listdir(version_dir) if name.endswith(".json")
                )
                shutil.rmtree(version_dir, ignore_errors=True)
            except OSError:
                continue
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry counts and sizes plus this process's session counters."""
        disk_entries = 0
        disk_bytes = 0
        by_analysis: Dict[str, int] = {}
        try:
            names = os.listdir(self.entries_dir)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            disk_entries += 1
            # entry files are "<analysis>-<64-hex-key>.json"
            analysis = name[: -len(".json")].rsplit("-", 1)[0]
            by_analysis[analysis] = by_analysis.get(analysis, 0) + 1
            try:
                disk_bytes += os.path.getsize(os.path.join(self.entries_dir, name))
            except OSError:
                pass
        return {
            "directory": self.directory,
            "schema": CACHE_SCHEMA_VERSION,
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "by_analysis": by_analysis,
            "memory_entries": len(self._memory),
            "memory_limit": self.memory_entries,
            "session": dict(get_metrics("cache").counters),
        }

    def __repr__(self) -> str:
        return f"CacheStore({self.directory!r}, memory_entries={self.memory_entries})"


# ----------------------------------------------------------------------
# The process-wide active store
# ----------------------------------------------------------------------

_UNSET = object()
_ACTIVE: Any = _UNSET


def _store_from_env() -> Optional[CacheStore]:
    if os.environ.get("REPRO_NO_CACHE", "") not in ("", "0"):
        return None
    return CacheStore()


def active_store() -> Optional[CacheStore]:
    """The store :func:`repro.cache.cached_analysis` consults.

    Resolved lazily from the environment on first use:
    ``REPRO_NO_CACHE=1`` disables caching (returns ``None``),
    ``REPRO_CACHE_DIR`` relocates it.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        _ACTIVE = _store_from_env()
    return _ACTIVE


def set_store(store: Optional[CacheStore]) -> Optional[CacheStore]:
    """Install ``store`` (or ``None`` = disabled); returns the previous one."""
    global _ACTIVE
    previous = active_store()
    _ACTIVE = store
    return previous


def reset_store_from_env() -> None:
    """Forget the resolved store; the next use re-reads the environment."""
    global _ACTIVE
    _ACTIVE = _UNSET


@contextmanager
def use_store(store: Optional[CacheStore]) -> Iterator[Optional[CacheStore]]:
    """Scope ``store`` as the active one (``None`` disables caching)."""
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Scope with caching off — the benchmark ledger's timing harness
    uses this so cold-path measurements never touch a developer's
    populated ``~/.cache/repro``."""
    with use_store(None):
        yield
