"""Content-addressed memoisation of the expensive analyses.

Protocols are immutable values and every analysis here is a pure
function of the protocol plus numeric parameters, so results are
cached by *content address*: a SHA-256 fingerprint of the protocol's
renaming/reordering-invariant normal form, combined with a digest of
its concrete presentation and the call parameters.  See the three
submodules:

* :mod:`repro.cache.fingerprint` — the normal form and both digests;
* :mod:`repro.cache.store` — the two-tier (in-process LRU + on-disk
  JSON) store, atomic writes, corruption recovery, and the
  process-wide active-store plumbing (``REPRO_NO_CACHE`` /
  ``REPRO_CACHE_DIR``);
* :mod:`repro.cache.decorator` — ``@cached_analysis``, wired into
  Karp–Miller coverability, the Pottier completion, the Lemma 5.4
  saturation sequence, stable slices and both certificate pipelines.

Surfaces: ``repro cache stats|clear|path`` and the global
``--no-cache`` / ``--cache-dir`` CLI flags; hit/miss/evict counters
flow into the ``cache`` metrics registry entry and ``cache.lookup``
spans.
"""

from .decorator import cached_analysis, entry_key
from .fingerprint import (
    NORMAL_FORM_VERSION,
    UncacheableProtocolError,
    canonical_form,
    presentation_digest,
    protocol_fingerprint,
    state_name_map,
)
from .store import (
    CACHE_SCHEMA_VERSION,
    MISS,
    CacheStore,
    active_store,
    cache_disabled,
    default_cache_dir,
    reset_store_from_env,
    set_store,
    use_store,
)

__all__ = [
    "cached_analysis",
    "entry_key",
    "NORMAL_FORM_VERSION",
    "UncacheableProtocolError",
    "canonical_form",
    "presentation_digest",
    "protocol_fingerprint",
    "state_name_map",
    "CACHE_SCHEMA_VERSION",
    "MISS",
    "CacheStore",
    "active_store",
    "cache_disabled",
    "default_cache_dir",
    "reset_store_from_env",
    "set_store",
    "use_store",
]
