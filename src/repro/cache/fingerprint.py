"""Canonical protocol fingerprints: content addresses for analyses.

Analyses in this package are pure functions of a protocol's *structure*
``(Q, T, L, X, I, O)`` plus their own numeric parameters — the protocol
``name`` and the particular spelling of its states never influence a
Karp–Miller tree or a Hilbert basis (only how they are *presented*).
The cache therefore addresses results by two digests:

* :func:`protocol_fingerprint` — SHA-256 over a **normal form**
  invariant under state renaming and transition reordering.  Two
  isomorphic protocols share a fingerprint; the golden test pins the
  fingerprints of the shipped families so accidental normal-form
  drift (which would silently orphan every existing cache entry)
  fails loudly.
* :func:`presentation_digest` — SHA-256 over the concrete state
  order, state names and transition order.  Cached *payloads* are
  presentation-dependent (dense count tuples follow the state order;
  serialized transitions carry state names), so an entry is shared
  only between calls with identical presentation.  The fingerprint
  still travels in every entry as the protocol's identity.

The normal form is computed by iterative colour refinement (outputs,
leader counts and input variables seed the colours; transition-role
signatures refine them) followed by a minimum-signature search over
the orderings that respect the final colour classes.  The classes are
isomorphism-invariant, so minimising within them is exact; the search
is abandoned (``canonical_form`` returns ``None``) when the class
sizes make it exceed ``permutation_budget``, in which case the
fingerprint degrades to a presentation-based one — still a valid
cache address, merely not shared across renamings.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.protocol import PopulationProtocol

__all__ = [
    "NORMAL_FORM_VERSION",
    "UncacheableProtocolError",
    "canonical_form",
    "protocol_fingerprint",
    "presentation_digest",
    "state_name_map",
]

NORMAL_FORM_VERSION = 1
"""Bump when the normal form below changes shape.

Bumping orphans every existing fingerprint (and hence every cache
entry); the golden test in ``tests/test_cache.py`` pins concrete
fingerprints so an accidental change fails loudly.  The documented
procedure for a deliberate change lives in docs/tutorial.md §12.
"""

DEFAULT_PERMUTATION_BUDGET = 40_320  # 8! — every <= 8-state symmetric class


class UncacheableProtocolError(ReproError):
    """The protocol cannot be serialised unambiguously (e.g. two states
    or two input variables share a ``str()`` spelling); callers skip
    the cache and compute directly."""


def _rank(values: Dict[Hashable, Any]) -> Dict[Hashable, int]:
    """Replace comparable colour values by their dense sorted ranks."""
    order = {value: rank for rank, value in enumerate(sorted(set(values.values())))}
    return {key: order[value] for key, value in values.items()}


def _refined_colors(protocol: PopulationProtocol) -> Dict[Hashable, int]:
    """Stable colouring of the states, invariant under renaming.

    Seed colour: ``(output, leader count, sorted input variables)``.
    Refinement: each round appends, per state, the sorted multiset of
    its transition roles ``(pre colours, post colours, occurrences of
    the state in pre, in post)``.  Colour classes only ever split, so
    the loop stops as soon as the class count stops growing.
    """
    variables_of: Dict[Hashable, List[str]] = {s: [] for s in protocol.states}
    for variable, target in protocol.input_mapping.items():
        variables_of[target].append(str(variable))
    seed = {
        s: (protocol.output[s], protocol.leaders[s], tuple(sorted(variables_of[s])))
        for s in protocol.states
    }
    # Each transition touches at most four states; iterating incident
    # transitions per state keeps a refinement round at O(|T|), not
    # O(|Q| * |T|) (the difference is minutes on compiled protocols).
    incident: Dict[Hashable, List[Tuple[Any, int, int]]] = {s: [] for s in protocol.states}
    for t in protocol.transitions:
        for s in {t.p, t.q, t.p2, t.q2}:
            s_pre = (t.p == s) + (t.q == s)
            s_post = (t.p2 == s) + (t.q2 == s)
            incident[s].append((t, s_pre, s_post))
    colors = _rank(seed)
    while True:
        signatures: Dict[Hashable, Any] = {}
        for s in protocol.states:
            roles = []
            for t, s_pre, s_post in incident[s]:
                pre = tuple(sorted((colors[t.p], colors[t.q])))
                post = tuple(sorted((colors[t.p2], colors[t.q2])))
                roles.append((pre, post, s_pre, s_post))
            signatures[s] = (colors[s], tuple(sorted(roles)))
        refined = _rank(signatures)
        if len(set(refined.values())) == len(set(colors.values())):
            return refined
        colors = refined


def _encode_order(
    protocol: PopulationProtocol, order: Tuple[Hashable, ...]
) -> Tuple[Any, ...]:
    """The comparable signature of one candidate state ordering."""
    index = {s: i for i, s in enumerate(order)}
    outputs = tuple(protocol.output[s] for s in order)
    leaders = tuple(protocol.leaders[s] for s in order)
    inputs = tuple(sorted((str(v), index[s]) for v, s in protocol.input_mapping.items()))
    transitions = tuple(
        sorted(
            (
                tuple(sorted((index[t.p], index[t.q]))),
                tuple(sorted((index[t.p2], index[t.q2]))),
            )
            for t in protocol.transitions
        )
    )
    return (outputs, leaders, inputs, transitions)


def canonical_form(
    protocol: PopulationProtocol,
    permutation_budget: int = DEFAULT_PERMUTATION_BUDGET,
) -> Optional[Dict[str, Any]]:
    """The renaming/reordering-invariant normal form, or ``None``.

    ``None`` means the colour classes left more than
    ``permutation_budget`` candidate orderings — the caller falls back
    to a presentation-based fingerprint rather than blowing up.
    """
    colors = _refined_colors(protocol)
    classes: Dict[int, List[Hashable]] = {}
    for s in protocol.states:
        classes.setdefault(colors[s], []).append(s)
    ordered_classes = [classes[color] for color in sorted(classes)]
    candidates = 1
    for members in ordered_classes:
        candidates *= math.factorial(len(members))
        if candidates > permutation_budget:
            return None

    best: Optional[Tuple[Any, ...]] = None
    for combo in itertools.product(
        *(itertools.permutations(members) for members in ordered_classes)
    ):
        order = tuple(s for group in combo for s in group)
        signature = _encode_order(protocol, order)
        if best is None or signature < best:
            best = signature
    assert best is not None  # protocols have >= 1 state
    outputs, leaders, inputs, transitions = best
    return {
        "n": len(protocol.states),
        "outputs": list(outputs),
        "leaders": list(leaders),
        "inputs": [[variable, index] for variable, index in inputs],
        "transitions": [[list(pre), list(post)] for pre, post in transitions],
    }


def _digest(tag: str, payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"{tag}:{blob}".encode("utf-8")).hexdigest()


def presentation_form(protocol: PopulationProtocol) -> Dict[str, Any]:
    """The concrete presentation (state order/names, transition order).

    Excludes the protocol ``name`` — no analysis result depends on it.
    Raises :class:`UncacheableProtocolError` when states or variables
    are not distinguishable by ``str()`` (payloads serialise states by
    name, so a collision would make decoding ambiguous).
    """
    names = [str(s) for s in protocol.states]
    if len(set(names)) != len(names):
        raise UncacheableProtocolError(
            "two states share a str() spelling; protocol is not cacheable"
        )
    variables = [str(v) for v in protocol.input_mapping]
    if len(set(variables)) != len(variables):
        raise UncacheableProtocolError(
            "two input variables share a str() spelling; protocol is not cacheable"
        )
    index = {s: i for i, s in enumerate(protocol.states)}
    return {
        "states": names,
        "transitions": [
            [index[t.p], index[t.q], index[t.p2], index[t.q2]]
            for t in protocol.transitions
        ],
        "leaders": [[index[s], c] for s, c in sorted(protocol.leaders.items(), key=lambda item: index[item[0]])],
        "inputs": sorted([str(v), index[s]] for v, s in protocol.input_mapping.items()),
        "outputs": [protocol.output[s] for s in protocol.states],
    }


def presentation_digest(protocol: PopulationProtocol) -> str:
    """SHA-256 hex digest of :func:`presentation_form` (memoised)."""
    cached = getattr(protocol, "_presentation_digest_cache", None)
    if cached is None:
        cached = _digest("repro-protocol-presentation", presentation_form(protocol))
        object.__setattr__(protocol, "_presentation_digest_cache", cached)
    return cached


def protocol_fingerprint(
    protocol: PopulationProtocol,
    permutation_budget: int = DEFAULT_PERMUTATION_BUDGET,
) -> str:
    """The content address: SHA-256 hex digest of the normal form.

    Isomorphic protocols (equal up to state renaming; transition order
    never matters) share a fingerprint, except for the rare
    budget-fallback case documented on :func:`canonical_form`.
    """
    memoise = permutation_budget == DEFAULT_PERMUTATION_BUDGET
    if memoise:
        cached = getattr(protocol, "_fingerprint_cache", None)
        if cached is not None:
            return cached
    form = canonical_form(protocol, permutation_budget=permutation_budget)
    if form is None:
        payload = {
            "v": NORMAL_FORM_VERSION,
            "normal_form": "presentation",
            "form": presentation_form(protocol),
        }
    else:
        payload = {"v": NORMAL_FORM_VERSION, "normal_form": "canonical", "form": form}
    digest = _digest("repro-protocol-nf", payload)
    if memoise:
        object.__setattr__(protocol, "_fingerprint_cache", digest)
    return digest


def state_name_map(protocol: PopulationProtocol) -> Dict[str, Hashable]:
    """``str(state) -> state`` for decoding serialised payloads."""
    mapping = {str(s): s for s in protocol.states}
    if len(mapping) != len(protocol.states):
        raise UncacheableProtocolError(
            "two states share a str() spelling; protocol is not cacheable"
        )
    return mapping
