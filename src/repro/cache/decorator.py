"""``@cached_analysis`` — content-addressed memoisation for analyses.

Wraps a pure analysis function whose first parameter is a
:class:`~repro.core.protocol.PopulationProtocol`.  Each call site
supplies three small codecs:

* ``params(arguments)`` — the remaining call arguments (a dict of
  parameter name to value, defaults applied) reduced to a
  JSON-serialisable dict; everything that can change the result must
  appear here (budgets included: a tree built under a larger node
  budget is not the same object as one that raised under a smaller).
* ``encode(result, protocol)`` — result to JSON-serialisable payload.
* ``decode(payload, protocol)`` — payload back to a result object,
  validating shape as it goes; *any* exception it raises is treated
  as a corrupt/incompatible entry (counted, invalidated, recomputed),
  because disk payloads are not trusted input.

Cache discipline:

* calls whose first argument is not a ``PopulationProtocol`` (the
  analyses also accept pre-indexed views) bypass the cache entirely;
* protocols that cannot be serialised unambiguously
  (:class:`~repro.cache.fingerprint.UncacheableProtocolError`) are
  computed without caching;
* exceptions from the wrapped function propagate and cache nothing —
  a ``SearchBudgetExceeded`` today must stay retryable tomorrow;
* ``None`` results are cached (wrapped, so a cached "no certificate
  exists" is distinguishable from a miss);
* every lookup opens a ``cache.lookup`` span whose hit/miss counters
  fold into the ``spans`` metrics entry, and mirrors into the
  process-wide ``cache`` metrics registry — which the parallel
  backend already merges from workers via its registry deltas.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Dict, Optional

from ..core.protocol import PopulationProtocol
from ..obs.metrics import get_metrics
from ..obs.tracer import get_tracer
from .fingerprint import (
    UncacheableProtocolError,
    _digest,
    presentation_digest,
    protocol_fingerprint,
)
from .store import MISS, active_store

__all__ = ["cached_analysis", "entry_key"]

ParamsFn = Callable[[Dict[str, Any]], Dict[str, Any]]
EncodeFn = Callable[[Any, PopulationProtocol], Any]
DecodeFn = Callable[[Any, PopulationProtocol], Any]


def entry_key(analysis: str, fingerprint: str, presentation: str, params: Dict[str, Any]) -> str:
    """The content address of one (protocol, analysis, parameters) call."""
    return _digest(
        "repro-cache-key",
        {
            "analysis": analysis,
            "fingerprint": fingerprint,
            "presentation": presentation,
            "params": params,
        },
    )


def cached_analysis(
    name: str,
    *,
    params: ParamsFn,
    encode: EncodeFn,
    decode: DecodeFn,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator memoising an analysis through the active cache store."""

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        signature = inspect.signature(fn)
        first_param = next(iter(signature.parameters))

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            store = active_store()
            protocol: Optional[Any] = args[0] if args else kwargs.get(first_param)
            if store is None or not isinstance(protocol, PopulationProtocol):
                return fn(*args, **kwargs)

            metrics = get_metrics("cache")
            try:
                bound = signature.bind(*args, **kwargs)
                bound.apply_defaults()
                arguments = dict(bound.arguments)
                arguments.pop(first_param)
                fingerprint = protocol_fingerprint(protocol)
                presentation = presentation_digest(protocol)
                key = entry_key(name, fingerprint, presentation, params(arguments))
            except UncacheableProtocolError:
                metrics.add("uncacheable")
                return fn(*args, **kwargs)

            with get_tracer().span("cache.lookup", analysis=name) as span:
                metrics.add("lookups")
                result = store.get_object(key)
                if result is not MISS:
                    metrics.add("hits")
                    metrics.add("memory_hits")
                    span.add("hit")
                    span.set(tier="memory")
                    return _unwrap(result)
                payload = store.get_payload(name, key)
                if payload is not MISS:
                    decoded = _decode_payload(payload, decode, protocol)
                    if decoded is not MISS:
                        metrics.add("hits")
                        metrics.add("disk_hits")
                        span.add("hit")
                        span.set(tier="disk")
                        store.put_object(key, decoded)
                        return _unwrap(decoded)
                    metrics.add("decode_errors")
                    store.invalidate(name, key)
                metrics.add("misses")
                span.add("miss")

            result = fn(*args, **kwargs)
            wrapped = {"none": True} if result is None else {"none": False}
            try:
                payload = dict(wrapped)
                if result is not None:
                    payload["value"] = encode(result, protocol)
            except UncacheableProtocolError:
                metrics.add("uncacheable")
                return result
            if store.put_payload(name, key, fingerprint, payload):
                metrics.add("stores")
            stored = wrapped if result is None else {**wrapped, "object": result}
            store.put_object(key, stored)
            return _unwrap(stored)

        return wrapper

    return wrap


def _decode_payload(payload: Any, decode: DecodeFn, protocol: PopulationProtocol) -> Any:
    """Decode a disk payload into the memory-tier wrapper, MISS on any defect."""
    try:
        if not isinstance(payload, dict) or "none" not in payload:
            raise ValueError("malformed cache payload")
        if payload["none"]:
            return {"none": True}
        return {"none": False, "object": decode(payload["value"], protocol)}
    except Exception:
        return MISS


def _unwrap(wrapped: Dict[str, Any]) -> Any:
    if wrapped["none"]:
        return None
    result = wrapped["object"]
    # List results (e.g. a Hilbert basis) are handed out as shallow
    # copies so callers sorting or filtering in place cannot corrupt
    # the memory tier.
    if isinstance(result, list):
        return list(result)
    return result
