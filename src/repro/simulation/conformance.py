"""Scheduler conformance: cross-check every sampler against the semantics.

The repo ships four samplers of the *same* stochastic semantics —
:class:`~repro.simulation.scheduler.AgentListScheduler` (explicit
agents), :class:`~repro.simulation.scheduler.CountScheduler` (exact
count-based sampling), :class:`~repro.simulation.fast.BatchScheduler`
(tau-leaping) and
:class:`~repro.simulation.vectorized.VectorEnsembleScheduler`
(tau-leaping over a whole trials×states ensemble matrix) — plus a
fault-injecting runner on top.  Every
parallel-time claim reproduced from the paper (Section 2's semantics,
the ``O(n log n)`` convergence of [6] measured in E9/E10) is only as
trustworthy as these samplers, and every future fast backend must be
held to the same standard.  This module is that standard:

1. **Analytic one-step distributions.**  In a configuration ``C`` with
   ``n`` agents, the probability that the next interaction involves
   the unordered state pair ``{p, q}`` is ``C(p) C(q) * 2 / (n(n-1))``
   for ``p != q`` and ``C(p)(C(p)-1) / (n(n-1))`` for ``p = q``; for
   nondeterministic protocols each transition of the pair then fires
   with equal probability.  :func:`analytic_pair_distribution` and
   :func:`analytic_delta_distribution` compute these exactly.

2. **Chi-squared first-step tests.**  Each scheduler repeatedly
   samples its first step from the initial configuration; the observed
   pair (exact samplers) and displacement (all samplers) frequencies
   are chi-squared-tested against the analytic distribution, with a
   pure-Python survival function (no scipy dependency).

3. **Seeded differential trajectory sweeps.**  Fixed-seed runs of all
   three schedulers are checked step by step: population conservation,
   non-negative counts, legal configurations, and (for the exact
   samplers) that every reported interaction was enabled and fired a
   registered transition.  Matched seeds across the two exact samplers
   must agree on the run-level :class:`SimulationResult` fields that
   are seed-independent for well-specified protocols (population, and
   the consensus verdict whenever both runs converge).

The result is a machine-readable :class:`ConformanceReport` — the
standing correctness gate (experiment E11, ``repro conformance`` on
the CLI) for the simulation stack.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, _pair
from ..obs import get_tracer
from ..parallel import TaskEnvelope, merge_snapshots, run_tasks
from .fast import BatchScheduler
from .instrumentation import Instrumentation, InstrumentationSnapshot
from .scheduler import AgentListScheduler, CountScheduler
from .vectorized import VectorEnsembleScheduler

__all__ = [
    "ChiSquaredResult",
    "TrajectoryCheck",
    "MatchedSeedCheck",
    "ConformanceReport",
    "analytic_pair_distribution",
    "analytic_delta_distribution",
    "chi_squared_sf",
    "check_conformance",
]

State = Hashable
PairKey = Tuple[State, State]
DeltaKey = Tuple[int, ...]


# ----------------------------------------------------------------------
# Analytic one-step distributions
# ----------------------------------------------------------------------


def analytic_pair_distribution(configuration: Multiset) -> Dict[PairKey, float]:
    """Exact distribution of the unordered state pair of the next meeting.

    Categories with probability zero are omitted; the returned
    probabilities sum to 1 up to floating-point rounding.
    """
    n = configuration.size
    if n < 2:
        raise ConfigurationError("pair distribution needs at least two agents")
    total = float(n) * float(n - 1)
    items = [(s, c) for s, c in configuration.items() if c > 0]
    distribution: Dict[PairKey, float] = {}
    for a, (s, c) in enumerate(items):
        if c >= 2:
            distribution[_pair(s, s)] = c * (c - 1) / total
        for t, d in items[a + 1 :]:
            distribution[_pair(s, t)] = 2.0 * c * d / total
    return distribution


def analytic_delta_distribution(
    protocol: PopulationProtocol, configuration: Multiset
) -> Dict[DeltaKey, float]:
    """Exact distribution of the one-step displacement (dense tuple).

    Marginalises the pair distribution through the transition relation
    with uniform tie-breaking among the transitions of a pair; pairs
    without a registered transition contribute to the zero
    displacement.  This is the distribution every conforming sampler's
    single step must follow, observable without access to which agents
    actually met — so it applies to the batch scheduler too.
    """
    indexed = protocol.indexed()
    outcomes: Dict[PairKey, List[DeltaKey]] = {}
    for t_index, t in enumerate(protocol.transitions):
        outcomes.setdefault((t.p, t.q), []).append(indexed.deltas[t_index])
    zero: DeltaKey = (0,) * indexed.n
    distribution: Dict[DeltaKey, float] = {}
    for pair, probability in analytic_pair_distribution(configuration).items():
        deltas = outcomes.get(pair, [zero])
        share = probability / len(deltas)
        for delta in deltas:
            distribution[delta] = distribution.get(delta, 0.0) + share
    return distribution


# ----------------------------------------------------------------------
# Chi-squared machinery (pure Python, no scipy)
# ----------------------------------------------------------------------


def chi_squared_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-squared distribution.

    ``P(X >= statistic)`` for ``X ~ chi2(dof)``, via the regularized
    upper incomplete gamma function ``Q(dof/2, statistic/2)`` (series
    below ``a + 1``, Lentz continued fraction above — the standard
    special-function split).
    """
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    if statistic <= 0.0:
        return 1.0
    return _upper_regularized_gamma(dof / 2.0, statistic / 2.0)


def _upper_regularized_gamma(a: float, x: float) -> float:
    if x < a + 1.0:
        return max(0.0, 1.0 - _lower_gamma_series(a, x))
    return _upper_gamma_fraction(a, x)


def _gamma_prefactor(a: float, x: float) -> float:
    return math.exp(-x + a * math.log(x) - math.lgamma(a))


def _lower_gamma_series(a: float, x: float) -> float:
    term = 1.0 / a
    total = term
    rank = a
    for _ in range(500):
        rank += 1.0
        term *= x / rank
        total += term
        if abs(term) < abs(total) * 1e-14:
            break
    return total * _gamma_prefactor(a, x)


def _upper_gamma_fraction(a: float, x: float) -> float:
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b if b != 0.0 else 1.0 / tiny
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h * _gamma_prefactor(a, x)


@dataclass(frozen=True)
class ChiSquaredResult:
    """One empirical-vs-analytic goodness-of-fit test."""

    scheduler: str
    kind: str  # "pair" (which states met) or "delta" (what changed)
    samples: int
    statistic: float
    dof: int
    p_value: float
    passed: bool
    stray: Tuple[str, ...] = ()  # observed categories of probability zero

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "kind": self.kind,
            "samples": self.samples,
            "statistic": self.statistic,
            "dof": self.dof,
            "p_value": self.p_value,
            "passed": self.passed,
            "stray": list(self.stray),
        }


def _chi_squared_test(
    scheduler: str,
    kind: str,
    observed: Mapping[object, int],
    expected_probabilities: Mapping[object, float],
    samples: int,
    significance: float,
) -> ChiSquaredResult:
    """Pearson chi-squared with pooling of low-expectation categories.

    Categories whose expected count falls below 5 are pooled into one
    bucket (the textbook validity condition); any observation outside
    the analytic support is an outright failure regardless of the
    statistic — a conforming sampler can never produce an impossible
    step.
    """
    stray = tuple(
        sorted(str(cat) for cat, hits in observed.items() if hits and cat not in expected_probabilities)
    )
    buckets: List[Tuple[float, float]] = []  # (observed, expected)
    pool_observed = 0.0
    pool_expected = 0.0
    for category, probability in expected_probabilities.items():
        expected = probability * samples
        hits = observed.get(category, 0)
        if expected < 5.0:
            pool_observed += hits
            pool_expected += expected
        else:
            buckets.append((float(hits), expected))
    if pool_expected > 0.0:
        buckets.append((pool_observed, pool_expected))
    dof = len(buckets) - 1
    statistic = sum((o - e) ** 2 / e for o, e in buckets if e > 0.0)
    p_value = chi_squared_sf(statistic, dof) if dof >= 1 else 1.0
    return ChiSquaredResult(
        scheduler=scheduler,
        kind=kind,
        samples=samples,
        statistic=statistic,
        dof=dof,
        p_value=p_value,
        passed=(p_value >= significance) and not stray,
        stray=stray,
    )


# ----------------------------------------------------------------------
# First-step sampling per scheduler
# ----------------------------------------------------------------------


def _delta_of_outcome(pre: PairKey, post: PairKey, index: Mapping[State, int], n: int) -> DeltaKey:
    delta = [0] * n
    delta[index[pre[0]]] -= 1
    delta[index[pre[1]]] -= 1
    delta[index[post[0]]] += 1
    delta[index[post[1]]] += 1
    return tuple(delta)


def _sample_exact_first_steps(scheduler, inputs, samples: int, index: Mapping[State, int]):
    """Pair and displacement frequencies of the first step, resampled."""
    pairs: Counter = Counter()
    deltas: Counter = Counter()
    n = len(index)
    for _ in range(samples):
        scheduler.reset(inputs)
        outcome = scheduler.step()
        pairs[_pair(*outcome.pre)] += 1
        deltas[_delta_of_outcome(outcome.pre, outcome.post, index, n)] += 1
    return pairs, deltas


def _sample_batch_first_steps(scheduler: BatchScheduler, inputs, samples: int) -> Counter:
    """Displacement frequencies of single-interaction leaps, resampled."""
    deltas: Counter = Counter()
    for _ in range(samples):
        scheduler.reset(inputs)
        before = scheduler.counts.copy()
        scheduler.leap(1)
        deltas[tuple(int(v) for v in scheduler.counts - before)] += 1
    return deltas


def _sample_vector_first_steps(
    scheduler: VectorEnsembleScheduler, inputs, samples: int
) -> Counter:
    """Displacement frequencies of one-interaction rounds, one per trial.

    The vector engine's natural sampling unit is a whole-ensemble
    round, so ``samples`` i.i.d. first steps are exactly one
    ``leap(ones)`` over a ``samples``-trial matrix — the same batched
    code path production runs take.
    """
    import numpy as np

    scheduler.reset(inputs)
    before = scheduler.counts.copy()
    scheduler.leap(np.ones(scheduler.trials, dtype=np.int64))
    deltas: Counter = Counter()
    for row in (scheduler.counts - before):
        deltas[tuple(int(v) for v in row)] += 1
    return deltas


def _exact_pair_error(
    pair_distribution: Tuple[Sequence[PairKey], Sequence[float], float],
    analytic: Mapping[PairKey, float],
) -> float:
    """Max abs deviation of a scheduler's closed-form pair distribution.

    Both the batch and the vector engines expose their sampling
    distribution as ``(keys, probabilities, inert)``; a conforming
    engine must match the analytic pair law exactly (up to one or two
    ulps of the final division), not just statistically.
    """
    keys, probabilities, inert = pair_distribution
    error = 0.0
    registered_mass = 0.0
    for key, probability in zip(keys, probabilities):
        expected = analytic.get(key, 0.0)
        registered_mass += expected
        error = max(error, abs(float(probability) - expected))
    return max(error, abs(inert - (1.0 - registered_mass)))


# ----------------------------------------------------------------------
# Trajectory invariants
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrajectoryCheck:
    """Invariant sweep of seeded trajectories for one scheduler."""

    scheduler: str
    seeds: Tuple[int, ...]
    steps_checked: int
    violations: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "seeds": list(self.seeds),
            "steps_checked": self.steps_checked,
            "violations": list(self.violations),
            "passed": self.passed,
        }


def _check_exact_trajectories(
    protocol: PopulationProtocol,
    scheduler_class,
    name: str,
    inputs,
    seeds: Sequence[int],
    steps: int,
) -> TrajectoryCheck:
    allowed: Dict[PairKey, set] = {}
    for t in protocol.transitions:
        allowed.setdefault((t.p, t.q), set()).add(_pair(t.p2, t.q2))
    legal_states = set(protocol.states)
    violations: List[str] = []
    checked = 0

    for seed in seeds:
        scheduler = scheduler_class(protocol, seed=seed)
        scheduler.reset(inputs)
        expected = scheduler.configuration
        population = expected.size
        for step_index in range(steps):
            outcome = scheduler.step()
            checked += 1
            where = f"{name} seed={seed} step={step_index}"
            pre = _pair(*outcome.pre)
            post = _pair(*outcome.post)
            if not expected >= Multiset([pre[0], pre[1]]):
                violations.append(f"{where}: pair {pre} not available in configuration")
            options = allowed.get(pre)
            if options is None:
                if post != pre:
                    violations.append(f"{where}: unregistered pair {pre} changed into {post}")
            elif post not in options:
                violations.append(f"{where}: outcome {post} not a registered transition of {pre}")
            expected = expected - Multiset([pre[0], pre[1]]) + Multiset([post[0], post[1]])
            actual = scheduler.configuration
            if actual != expected:
                violations.append(f"{where}: configuration diverged from the reported step")
                expected = actual  # resynchronise; report once per divergence
            if actual.size != population:
                violations.append(f"{where}: population changed {population} -> {actual.size}")
            if not actual.support() <= legal_states:
                violations.append(f"{where}: illegal states {actual.support() - legal_states}")
            counts = getattr(scheduler, "counts", None)
            if counts is not None and min(counts) < 0:
                violations.append(f"{where}: negative state count")
            if len(violations) >= 10:
                break
        if len(violations) >= 10:
            break
    return TrajectoryCheck(
        scheduler=name, seeds=tuple(seeds), steps_checked=checked, violations=tuple(violations)
    )


def _check_batch_trajectories(
    protocol: PopulationProtocol,
    inputs,
    seeds: Sequence[int],
    steps: int,
    leap_size: int,
) -> TrajectoryCheck:
    legal_states = set(protocol.states)
    violations: List[str] = []
    checked = 0
    for seed in seeds:
        scheduler = BatchScheduler(protocol, seed=seed)
        scheduler.reset(inputs)
        population = scheduler.population
        done = 0
        while done < steps:
            chunk = min(leap_size, steps - done)
            advanced = scheduler.leap(chunk)
            checked += advanced
            where = f"batch seed={seed} interaction={done}"
            if advanced != chunk:
                violations.append(f"{where}: leap({chunk}) advanced only {advanced}")
            done += max(1, advanced)
            if scheduler.population != population:
                violations.append(
                    f"{where}: population changed {population} -> {scheduler.population}"
                )
            if (scheduler.counts < 0).any():
                violations.append(f"{where}: negative state count")
            support = scheduler.configuration.support()
            if not support <= legal_states:
                violations.append(f"{where}: illegal states {support - legal_states}")
            if len(violations) >= 10:
                break
        if len(violations) >= 10:
            break
    return TrajectoryCheck(
        scheduler="batch", seeds=tuple(seeds), steps_checked=checked, violations=tuple(violations)
    )


def _check_vector_trajectories(
    protocol: PopulationProtocol,
    inputs,
    seeds: Sequence[int],
    steps: int,
    leap_size: int,
    trials: int = 4,
) -> TrajectoryCheck:
    """Invariant sweep of the vector engine: per trial, per round.

    Population conservation, non-negative counts, and legal support
    are asserted for *every trial row* after *every* leap round — the
    per-trial analogue of the batch sweep.
    """
    import numpy as np

    legal_states = set(protocol.states)
    violations: List[str] = []
    checked = 0
    for seed in seeds:
        scheduler = VectorEnsembleScheduler(protocol, trials=trials, seed=seed)
        scheduler.reset(inputs)
        population = scheduler.population
        done = 0
        while done < steps:
            chunk = min(leap_size, steps - done)
            advanced = scheduler.leap(np.full(trials, chunk, dtype=np.int64))
            checked += int(advanced.sum())
            where = f"vector seed={seed} interaction={done}"
            if (advanced != chunk).any():
                violations.append(f"{where}: leap({chunk}) under-delivered")
            done += chunk
            sums = scheduler.counts.sum(axis=1)
            if (sums != population).any():
                bad = int(np.nonzero(sums != population)[0][0])
                violations.append(
                    f"{where}: trial {bad} population changed "
                    f"{population} -> {int(sums[bad])}"
                )
            if (scheduler.counts < 0).any():
                violations.append(f"{where}: negative state count")
            for trial in range(trials):
                support = scheduler.configuration(trial).support()
                if not support <= legal_states:
                    violations.append(
                        f"{where}: trial {trial} illegal states {support - legal_states}"
                    )
            if len(violations) >= 10:
                break
        if len(violations) >= 10:
            break
    return TrajectoryCheck(
        scheduler="vector", seeds=tuple(seeds), steps_checked=checked, violations=tuple(violations)
    )


# ----------------------------------------------------------------------
# Matched-seed differential runs (the two exact samplers)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MatchedSeedCheck:
    """Run-level agreement of the exact samplers under matched seeds.

    The two exact samplers consume randomness differently, so their
    trajectories differ even under one seed; what must agree are the
    seed-independent :class:`SimulationResult` fields — the population,
    and (for well-specified protocols, which converge to the predicate
    value with probability 1) the consensus verdict whenever both runs
    reach silent consensus within budget.
    """

    seeds: Tuple[int, ...]
    runs_converged: int
    mismatches: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "runs_converged": self.runs_converged,
            "mismatches": list(self.mismatches),
            "passed": self.passed,
        }


def _check_matched_seed(
    protocol: PopulationProtocol,
    inputs,
    seed: int,
    max_steps: int,
    compare_verdicts: bool,
) -> Tuple[Tuple[str, ...], bool]:
    """One matched-seed differential run: (mismatches, both converged)."""
    mismatches: List[str] = []
    agent_run = AgentListScheduler(protocol, seed=seed).run(inputs, max_steps=max_steps)
    count_run = CountScheduler(protocol, seed=seed).run(inputs, max_steps=max_steps)
    if agent_run.population != count_run.population:
        mismatches.append(
            f"seed={seed}: population {agent_run.population} != {count_run.population}"
        )
    converged = agent_run.converged and count_run.converged
    if converged and compare_verdicts:
        agent_verdict = protocol.output_of(agent_run.configuration)
        count_verdict = protocol.output_of(count_run.configuration)
        if agent_verdict != count_verdict:
            mismatches.append(
                f"seed={seed}: verdicts differ (agent-list {agent_verdict}, "
                f"count {count_verdict})"
            )
    return tuple(mismatches), converged


def _check_matched_seeds(
    protocol: PopulationProtocol,
    inputs,
    seeds: Sequence[int],
    max_steps: int,
    compare_verdicts: bool,
) -> MatchedSeedCheck:
    mismatches: List[str] = []
    converged = 0
    for seed in seeds:
        seed_mismatches, seed_converged = _check_matched_seed(
            protocol, inputs, seed, max_steps, compare_verdicts
        )
        mismatches.extend(seed_mismatches)
        converged += 1 if seed_converged else 0
    return MatchedSeedCheck(
        seeds=tuple(seeds), runs_converged=converged, mismatches=tuple(mismatches)
    )


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConformanceReport:
    """Machine-readable verdict of a full conformance run."""

    protocol: str
    population: int
    samples: int
    significance: float
    first_step: Tuple[ChiSquaredResult, ...]
    batch_distribution_error: float
    batch_distribution_ok: bool
    vector_distribution_error: float
    vector_distribution_ok: bool
    trajectories: Tuple[TrajectoryCheck, ...]
    matched_seed: MatchedSeedCheck
    seed: Optional[int] = None
    instrumentation: Optional[InstrumentationSnapshot] = None
    jobs: int = 1

    @property
    def ok(self) -> bool:
        return (
            all(r.passed for r in self.first_step)
            and self.batch_distribution_ok
            and self.vector_distribution_ok
            and all(t.passed for t in self.trajectories)
            and self.matched_seed.passed
        )

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "population": self.population,
            "samples": self.samples,
            "significance": self.significance,
            # The root RNG seed, worker count, and work counters make
            # the artifact self-describing: the exact run can be
            # reproduced (results are jobs-independent by contract) and
            # the amount of sampling behind each verdict is recorded.
            "seed": self.seed,
            "jobs": self.jobs,
            "first_step": [r.to_dict() for r in self.first_step],
            "batch_distribution_error": self.batch_distribution_error,
            "batch_distribution_ok": self.batch_distribution_ok,
            "vector_distribution_error": self.vector_distribution_error,
            "vector_distribution_ok": self.vector_distribution_ok,
            "trajectories": [t.to_dict() for t in self.trajectories],
            "matched_seed": self.matched_seed.to_dict(),
            "instrumentation": (
                self.instrumentation.as_dict() if self.instrumentation is not None else None
            ),
            "ok": self.ok,
        }

    def render(self) -> str:
        """A console rendering of the full report."""
        from ..fmt import render_table

        lines = [
            f"conformance report: {self.protocol} "
            f"(n={self.population}, {self.samples} first-step samples, "
            f"significance {self.significance:g})",
            "",
            "first-step distributions (chi-squared vs analytic):",
        ]
        rows = [
            [
                r.scheduler,
                r.kind,
                f"{r.statistic:.2f}",
                r.dof,
                f"{r.p_value:.3f}",
                "ok" if r.passed else "FAIL" + (f" stray={list(r.stray)}" if r.stray else ""),
            ]
            for r in self.first_step
        ]
        lines.append(render_table(["scheduler", "kind", "statistic", "dof", "p-value", "verdict"], rows))
        lines.append(
            f"batch leap distribution vs analytic: max abs error "
            f"{self.batch_distribution_error:.2e} "
            f"({'ok' if self.batch_distribution_ok else 'FAIL'})"
        )
        lines.append(
            f"vector leap distribution vs analytic: max abs error "
            f"{self.vector_distribution_error:.2e} "
            f"({'ok' if self.vector_distribution_ok else 'FAIL'})"
        )
        lines.append("")
        lines.append("trajectory invariant sweeps:")
        rows = [
            [
                t.scheduler,
                len(t.seeds),
                t.steps_checked,
                "ok" if t.passed else f"FAIL ({len(t.violations)} violations)",
            ]
            for t in self.trajectories
        ]
        lines.append(render_table(["scheduler", "seeds", "interactions checked", "verdict"], rows))
        for t in self.trajectories:
            for violation in t.violations:
                lines.append(f"  ! {violation}")
        lines.append(
            f"matched-seed exact samplers: "
            f"{'ok' if self.matched_seed.passed else 'FAIL'} "
            f"({len(self.matched_seed.seeds)} seeds, "
            f"{self.matched_seed.runs_converged} fully converged)"
        )
        for mismatch in self.matched_seed.mismatches:
            lines.append(f"  ! {mismatch}")
        lines.append("")
        lines.append(f"overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SweepSettings:
    """Everything a conformance sub-check needs, picklable as one blob."""

    protocol: PopulationProtocol
    inputs: object
    samples: int
    significance: float
    seed: int
    trajectory_seeds: Tuple[int, ...]
    trajectory_steps: int
    max_steps: int
    compare_verdicts: bool
    leap_size: int


_EXACT_SCHEDULERS = {"agent-list": AgentListScheduler, "count": CountScheduler}


def _conformance_task(task: TaskEnvelope):
    """One conformance sub-check; returns ``(value, harness snapshot)``.

    The sub-checks are the per-sampler seeded sweeps of the suite —
    each is self-contained (builds its own schedulers from the settings
    blob, with the same seeds the serial path uses), so fanning them
    out over workers cannot change any verdict.
    """
    kind, argument, settings = task.payload
    harness = Instrumentation()
    if kind == "first_step_exact":
        with harness.phase("first_step"):
            analytic = _analytic_first_step(settings)
            scheduler = _EXACT_SCHEDULERS[argument](settings.protocol, seed=settings.seed)
            pairs, deltas = _sample_exact_first_steps(
                scheduler, settings.inputs, settings.samples,
                settings.protocol.indexed().index,
            )
            harness.add("first_step_samples", settings.samples)
            value = (
                _chi_squared_test(
                    argument, "pair", pairs, analytic[0], settings.samples,
                    settings.significance,
                ),
                _chi_squared_test(
                    argument, "delta", deltas, analytic[1], settings.samples,
                    settings.significance,
                ),
            )
    elif kind == "first_step_batch":
        with harness.phase("first_step"):
            analytic = _analytic_first_step(settings)
            batch = BatchScheduler(settings.protocol, seed=settings.seed)
            batch_deltas = _sample_batch_first_steps(batch, settings.inputs, settings.samples)
            harness.add("first_step_samples", settings.samples)
            chi = _chi_squared_test(
                "batch", "delta", batch_deltas, analytic[1], settings.samples,
                settings.significance,
            )
            # The batch scheduler's sampling distribution is available
            # in closed form — compare it against the analytic one
            # exactly, not just statistically.
            batch.reset(settings.inputs)
            error = _exact_pair_error(batch.pair_distribution(), analytic[0])
            value = (chi, error, error < 1e-9)
    elif kind == "first_step_vector":
        with harness.phase("first_step"):
            analytic = _analytic_first_step(settings)
            vector = VectorEnsembleScheduler(
                settings.protocol, trials=settings.samples, seed=settings.seed
            )
            vector_deltas = _sample_vector_first_steps(
                vector, settings.inputs, settings.samples
            )
            harness.add("first_step_samples", settings.samples)
            chi = _chi_squared_test(
                "vector", "delta", vector_deltas, analytic[1], settings.samples,
                settings.significance,
            )
            # Same closed-form check as the batch engine: the vector
            # engine's per-trial pair distribution must match the
            # analytic law exactly, not just statistically.
            vector.reset(settings.inputs)
            error = _exact_pair_error(vector.pair_distribution(), analytic[0])
            value = (chi, error, error < 1e-9)
    elif kind == "trajectory":
        with harness.phase("trajectories"):
            if argument == "batch":
                value = _check_batch_trajectories(
                    settings.protocol, settings.inputs, settings.trajectory_seeds,
                    settings.trajectory_steps, leap_size=settings.leap_size,
                )
            elif argument == "vector":
                value = _check_vector_trajectories(
                    settings.protocol, settings.inputs, settings.trajectory_seeds,
                    settings.trajectory_steps, leap_size=settings.leap_size,
                )
            else:
                value = _check_exact_trajectories(
                    settings.protocol, _EXACT_SCHEDULERS[argument], argument,
                    settings.inputs, settings.trajectory_seeds,
                    settings.trajectory_steps,
                )
    elif kind == "matched":
        with harness.phase("matched_seeds"):
            value = _check_matched_seed(
                settings.protocol, settings.inputs, argument, settings.max_steps,
                settings.compare_verdicts,
            )
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown conformance task kind {kind!r}")
    return value, harness.snapshot()


def _analytic_first_step(settings: _SweepSettings):
    initial = settings.protocol.initial_configuration(settings.inputs)
    return (
        analytic_pair_distribution(initial),
        analytic_delta_distribution(settings.protocol, initial),
    )


def check_conformance(
    protocol: PopulationProtocol,
    inputs,
    *,
    samples: int = 2000,
    significance: float = 1e-3,
    trajectory_seeds: Sequence[int] = (0, 1, 2),
    trajectory_steps: int = 300,
    matched_seeds: Sequence[int] = (0, 1, 2),
    max_steps: int = 200_000,
    seed: int = 0,
    compare_verdicts: bool = True,
    jobs: int = 1,
) -> ConformanceReport:
    """Run the full conformance suite on one protocol and input.

    Deterministic for fixed arguments (all randomness is seeded), so a
    passing configuration keeps passing — the thresholds are tuned for
    the sample counts, not re-rolled per run.  ``jobs > 1`` fans the
    per-sampler sweeps out over a process pool; every sub-check carries
    its own explicit seeds, so the report is identical for any worker
    count (the differential suite asserts it field by field).

    ``compare_verdicts=False`` skips the matched-seed verdict
    comparison for protocols that are not well-specified (ones whose
    consensus value is itself random, e.g. a symmetric coin-flip
    protocol) — populations are still compared.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    initial = protocol.initial_configuration(inputs)
    settings = _SweepSettings(
        protocol=protocol,
        inputs=inputs,
        samples=samples,
        significance=significance,
        seed=seed,
        trajectory_seeds=tuple(trajectory_seeds),
        trajectory_steps=trajectory_steps,
        max_steps=max_steps,
        compare_verdicts=compare_verdicts,
        leap_size=max(1, initial.size // 10),
    )
    payloads = [
        ("first_step_exact", "agent-list", settings),
        ("first_step_exact", "count", settings),
        ("first_step_batch", None, settings),
        ("first_step_vector", None, settings),
        ("trajectory", "agent-list", settings),
        ("trajectory", "count", settings),
        ("trajectory", "batch", settings),
        ("trajectory", "vector", settings),
    ] + [("matched", matched_seed, settings) for matched_seed in matched_seeds]

    harness = Instrumentation()
    span_cm = get_tracer().span(
        "conformance.check",
        protocol=protocol.name,
        population=initial.size,
        seed=seed,
        jobs=jobs,
    )
    with span_cm, harness.phase("conformance"):
        envelopes = run_tasks(_conformance_task, payloads, jobs=jobs, label="conformance")
        values = [envelope.value[0] for envelope in envelopes]
        harness.merge(merge_snapshots(envelope.value[1] for envelope in envelopes))

        agent_chi, count_chi = values[0], values[1]
        batch_value, vector_value = values[2], values[3]
        first_step = (*agent_chi, *count_chi, batch_value[0], vector_value[0])
        batch_error, batch_ok = batch_value[1], batch_value[2]
        vector_error, vector_ok = vector_value[1], vector_value[2]
        trajectories = values[4:8]
        harness.add(
            "trajectory_interactions", sum(t.steps_checked for t in trajectories)
        )

        mismatches: List[str] = []
        converged = 0
        for seed_mismatches, seed_converged in values[8:]:
            mismatches.extend(seed_mismatches)
            converged += 1 if seed_converged else 0
        matched = MatchedSeedCheck(
            seeds=tuple(matched_seeds),
            runs_converged=converged,
            mismatches=tuple(mismatches),
        )
        harness.add("matched_seed_runs", 2 * len(matched.seeds))

    return ConformanceReport(
        protocol=protocol.name,
        population=initial.size,
        samples=samples,
        significance=significance,
        first_step=first_step,
        batch_distribution_error=batch_error,
        batch_distribution_ok=batch_ok,
        vector_distribution_error=vector_error,
        vector_distribution_ok=vector_ok,
        trajectories=tuple(trajectories),
        matched_seed=matched,
        seed=seed,
        instrumentation=harness.snapshot(),
        jobs=jobs,
    )
