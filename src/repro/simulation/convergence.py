"""Convergence measurements: parallel time statistics.

The paper's introduction recalls that every Presburger predicate is
decidable in ``O(n log n)`` parallel time [6].  Experiment E9 measures
this on the shipped protocols: repeated simulation runs, each stopped
at silent consensus, produce parallel-time samples whose growth in the
population size ``n`` is compared against ``c * log n``.

Convergence here means *silent consensus* — no transition can change
the configuration and all agents agree — which is a sufficient (and
for the shipped protocols, the actual) form of stabilisation; it is
detectable locally in O(|T|) per check, unlike b-stability which needs
a reachability argument.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..core.protocol import PopulationProtocol
from ..parallel import TaskEnvelope, chunk_ranges, default_chunk_size, run_tasks
from .scheduler import CountScheduler, SimulationResult

__all__ = ["ConvergenceStats", "measure_convergence", "convergence_scaling", "fit_nlogn"]


@dataclass(frozen=True)
class ConvergenceStats:
    """Parallel-time statistics over repeated runs of one input."""

    population: int
    trials: int
    mean_parallel_time: float
    stdev_parallel_time: float
    max_parallel_time: float
    all_converged: bool

    @property
    def per_log_n(self) -> float:
        """``mean / log2(n)`` — flat when convergence is ``Theta(n log n)``."""
        return self.mean_parallel_time / max(1.0, math.log2(self.population))


def _convergence_chunk(task: TaskEnvelope) -> List[Tuple[int, float, bool]]:
    """One block of convergence trials: ``(population, time, converged)`` rows."""
    protocol, inputs, start, stop, seed, max_steps = task.payload
    rows = []
    for trial in range(start, stop):
        # run() resets the scheduler itself; no separate reset needed
        scheduler = CountScheduler(protocol, seed=seed + trial)
        result = scheduler.run(inputs, max_steps=max_steps)
        rows.append((result.population, result.parallel_time, result.converged))
    return rows


def measure_convergence(
    protocol: PopulationProtocol,
    inputs,
    trials: int = 10,
    max_steps_factor: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> ConvergenceStats:
    """Simulate ``trials`` runs to silent consensus; report parallel times.

    ``max_steps_factor * n`` interactions bound each run; runs hitting
    the bound are flagged via ``all_converged = False`` (their censored
    time still enters the statistics).  Trial ``t`` is seeded
    ``seed + t`` whichever worker runs it, so ``jobs > 1`` changes the
    wall clock and nothing else.
    """
    times: List[float] = []
    converged = True
    population = protocol.initial_configuration(inputs).size
    if chunk_size is None:
        chunk_size = default_chunk_size(trials, jobs)
    envelopes = run_tasks(
        _convergence_chunk,
        [
            (protocol, inputs, start, stop, seed, max_steps_factor * population)
            for start, stop in chunk_ranges(trials, chunk_size)
        ],
        jobs=jobs,
        label="convergence",
    )
    for envelope in envelopes:
        for run_population, parallel_time, run_converged in envelope.value:
            population = run_population
            times.append(parallel_time)
            converged = converged and run_converged
    return ConvergenceStats(
        population=population,
        trials=trials,
        mean_parallel_time=statistics.fmean(times),
        stdev_parallel_time=statistics.stdev(times) if len(times) > 1 else 0.0,
        max_parallel_time=max(times),
        all_converged=converged,
    )


def convergence_scaling(
    protocol: PopulationProtocol,
    input_for_size: Callable[[int], Union[int, dict]],
    sizes: Sequence[int],
    trials: int = 5,
    seed: int = 0,
    jobs: int = 1,
) -> List[ConvergenceStats]:
    """Measure convergence at several population sizes.

    ``input_for_size(n)`` maps a target population size to the input
    (e.g. ``lambda n: n`` for single-variable protocols or
    ``lambda n: {"x": 2 * n // 3, "y": n // 3}`` for majority).
    ``jobs`` parallelises the trials within each size; the per-size
    statistics are unchanged by it.
    """
    return [
        measure_convergence(protocol, input_for_size(size), trials=trials, seed=seed, jobs=jobs)
        for size in sizes
    ]


def fit_nlogn(stats: Sequence[ConvergenceStats]) -> Tuple[float, float]:
    """Least-squares fit ``parallel_time ~ c * log2(n) + d``.

    Returns ``(c, d)``.  Under the ``O(n log n)`` total-interaction
    claim the parallel time is ``O(log n)``, so ``c`` is the empirical
    constant of experiment E9.
    """
    xs = [math.log2(s.population) for s in stats]
    ys = [s.mean_parallel_time for s in stats]
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two sizes to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    c = sxy / sxx if sxx else 0.0
    d = mean_y - c * mean_x
    return c, d
