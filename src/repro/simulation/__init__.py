"""Stochastic simulation: exact schedulers, batched leaps, convergence stats."""

from .conformance import (
    ChiSquaredResult,
    ConformanceReport,
    MatchedSeedCheck,
    TrajectoryCheck,
    analytic_delta_distribution,
    analytic_pair_distribution,
    check_conformance,
    chi_squared_sf,
)
from .ensembles import ENSEMBLE_ENGINES, EnsembleResult, run_ensemble
from .convergence import ConvergenceStats, convergence_scaling, fit_nlogn, measure_convergence
from .fast import BatchScheduler
from .vectorized import VectorEnsembleScheduler, VectorRunResult
from .faults import Fault, FaultyRunResult, corrupt, crash, run_with_faults
from .instrumentation import Instrumentation, InstrumentationSnapshot
from .scheduler import AgentListScheduler, CountScheduler, SimulationResult, StepOutcome
from .statistics import TimeSeries, record_time_series
from .trace import Trace, TraceEvent, record_trace

__all__ = [
    "AgentListScheduler",
    "CountScheduler",
    "BatchScheduler",
    "SimulationResult",
    "StepOutcome",
    "ConvergenceStats",
    "measure_convergence",
    "convergence_scaling",
    "fit_nlogn",
    "Trace",
    "TraceEvent",
    "record_trace",
    "TimeSeries",
    "record_time_series",
    "Fault",
    "crash",
    "corrupt",
    "run_with_faults",
    "FaultyRunResult",
    "EnsembleResult",
    "run_ensemble",
    "ENSEMBLE_ENGINES",
    "VectorEnsembleScheduler",
    "VectorRunResult",
    "Instrumentation",
    "InstrumentationSnapshot",
    "ChiSquaredResult",
    "ConformanceReport",
    "MatchedSeedCheck",
    "TrajectoryCheck",
    "analytic_pair_distribution",
    "analytic_delta_distribution",
    "check_conformance",
    "chi_squared_sf",
]
