"""Execution traces: recording and replaying simulated runs.

A :class:`Trace` records the interaction history of a simulated run —
useful for the examples (showing *how* a protocol converges), for
debugging protocol constructions, and for feeding recorded executions
back into the exact semantics (every trace replays through
:func:`repro.core.semantics.fire_sequence`-style stepping, which the
tests exploit as a consistency check between simulator and semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple, Union

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from .scheduler import CountScheduler, StepOutcome

__all__ = ["TraceEvent", "Trace", "record_trace"]

State = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded interaction."""

    index: int
    pre: Tuple[State, State]
    post: Tuple[State, State]

    @property
    def changed(self) -> bool:
        """Did this interaction change the configuration?"""
        return Multiset(self.pre) != Multiset(self.post)

    def __str__(self) -> str:
        marker = "" if self.changed else "  (silent)"
        return f"[{self.index:>6}] {self.pre[0]}, {self.pre[1]} -> {self.post[0]}, {self.post[1]}{marker}"


@dataclass
class Trace:
    """A recorded run: initial configuration plus interaction events."""

    protocol: PopulationProtocol
    initial: Multiset
    events: List[TraceEvent] = field(default_factory=list)

    def replay(self) -> Multiset:
        """Re-apply every event to the initial configuration.

        Raises ``ValueError`` if any event is inconsistent (pre states
        not present), making traces a machine-checkable artefact.
        """
        configuration = self.initial
        for event in self.events:
            pre = Multiset(event.pre)
            if not pre <= configuration:
                raise ValueError(f"event {event} not enabled in {configuration.pretty()}")
            configuration = configuration - pre + Multiset(event.post)
        return configuration

    def final_configuration(self) -> Multiset:
        """The configuration after replaying every event."""
        return self.replay()

    def changed_events(self) -> List[TraceEvent]:
        """Only the interactions that changed the configuration."""
        return [e for e in self.events if e.changed]

    def summary(self, head: int = 10) -> str:
        """Human-readable digest: first few effective interactions + totals."""
        effective = self.changed_events()
        lines = [
            f"trace of {self.protocol.name}: {len(self.events)} interactions, "
            f"{len(effective)} effective",
            f"  initial: {self.initial.pretty()}",
        ]
        lines.extend(f"  {event}" for event in effective[:head])
        if len(effective) > head:
            lines.append(f"  ... {len(effective) - head} more effective interactions")
        lines.append(f"  final:   {self.final_configuration().pretty()}")
        return "\n".join(lines)


def record_trace(
    protocol: PopulationProtocol,
    inputs,
    max_steps: int,
    seed: Optional[int] = None,
    stop_on_silent_consensus: bool = True,
) -> Trace:
    """Simulate with :class:`CountScheduler`, recording every interaction."""
    scheduler = CountScheduler(protocol, seed=seed)
    scheduler.reset(inputs)
    trace = Trace(protocol=protocol, initial=scheduler.configuration)
    from .scheduler import _is_silent_consensus

    for index in range(max_steps):
        if stop_on_silent_consensus and _is_silent_consensus(protocol, scheduler.configuration):
            break
        outcome = scheduler.step()
        trace.events.append(TraceEvent(index=index, pre=outcome.pre, post=outcome.post))
    return trace
