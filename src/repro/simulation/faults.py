"""Fault injection: protocol behaviour under crashes and corruption.

Population protocols are designed for fragile hardware (mobile
sensors, molecules); their correctness statements assume a *fixed*
population, and the interesting engineering question is what happens
when that assumption breaks.  This module injects faults into
simulated runs:

* **crash** faults remove agents (uniformly at random, or from a
  chosen state) at scheduled interaction counts;
* **corruption** faults reset agents to an arbitrary state (transient
  bit-flips, adversarial injection).

The runner reports the verdict with and without faults; the test suite
uses it to demonstrate both robustness (threshold protocols stay
correct when crashes don't cross the threshold; epidemics survive any
minority crash) and fragility (crashing the only accepting agent
before the epidemic starts flips the outcome) — the trade-offs behind
the self-stabilisation literature.

Faults change the population size, so the paper's predicates must be
re-read against the *surviving* input; :func:`run_with_faults` returns
enough information to do that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from .instrumentation import Instrumentation, InstrumentationSnapshot
from .scheduler import CountScheduler, _is_silent_consensus

__all__ = ["Fault", "crash", "corrupt", "FaultyRunResult", "run_with_faults"]

State = Hashable


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes
    ----------
    at_interaction:
        Fires just before this interaction index.
    kind:
        ``"crash"`` (remove agents) or ``"corrupt"`` (reset agents).
    count:
        How many agents are affected.
    state:
        Restrict the affected agents to this state (``None``: uniform
        over all agents).
    target_state:
        For corruption: the state the affected agents are reset to.
    """

    at_interaction: int
    kind: str
    count: int = 1
    state: Optional[State] = None
    target_state: Optional[State] = None

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "corrupt" and self.target_state is None:
            raise ValueError("corruption faults need a target_state")
        if self.count < 1:
            raise ValueError("fault count must be >= 1")
        if self.at_interaction < 0:
            raise ValueError(
                f"fault schedule must be non-negative, got at_interaction={self.at_interaction}"
            )


def crash(at_interaction: int, count: int = 1, state: Optional[State] = None) -> Fault:
    """A crash fault removing ``count`` agents."""
    return Fault(at_interaction=at_interaction, kind="crash", count=count, state=state)


def corrupt(
    at_interaction: int,
    target_state: State,
    count: int = 1,
    state: Optional[State] = None,
) -> Fault:
    """A corruption fault resetting ``count`` agents to ``target_state``."""
    return Fault(
        at_interaction=at_interaction,
        kind="corrupt",
        count=count,
        state=state,
        target_state=target_state,
    )


@dataclass
class FaultyRunResult:
    """Outcome of a fault-injected run.

    ``faults_skipped`` counts scheduled :class:`Fault` objects that
    never affected any agent — either no victim was ever available
    (e.g. a state-restricted fault on an empty state) or the fault was
    scheduled beyond the step budget.  ``instrumentation`` carries the
    run counters (interactions, silent checks, no-op interactions
    fast-forwarded over after stabilisation).
    """

    configuration: Multiset
    interactions: int
    converged: bool
    faults_applied: int
    survivors: int
    verdict: Optional[int]
    faults_skipped: int = 0
    instrumentation: Optional["InstrumentationSnapshot"] = None


def _pick_state(configuration: Multiset, restrict: Optional[State], rng: random.Random) -> Optional[State]:
    if restrict is not None:
        return restrict if configuration[restrict] > 0 else None
    total = configuration.size
    if total == 0:
        return None
    pick = rng.randrange(total)
    running = 0
    for state, count in configuration.items():
        running += count
        if pick < running:
            return state
    return None


def run_with_faults(
    protocol: PopulationProtocol,
    inputs,
    faults: Sequence[Fault],
    max_steps: int = 1_000_000,
    seed: Optional[int] = None,
) -> FaultyRunResult:
    """Simulate under the uniform scheduler with scheduled faults.

    Crashes that would leave fewer than two agents are skipped (the
    model needs interacting pairs).  Corruption to a state outside the
    protocol raises :class:`ProtocolError`.
    """
    for fault in faults:
        if fault.kind == "corrupt" and fault.target_state not in protocol.states:
            raise ProtocolError(f"corruption target {fault.target_state!r} is not a state")

    scheduler = CountScheduler(protocol, seed=seed)
    scheduler.reset(inputs)
    rng = random.Random(None if seed is None else seed + 7919)
    pending = sorted(faults, key=lambda f: f.at_interaction)
    instrumentation = Instrumentation()
    applied = 0
    skipped = 0
    interactions = 0
    converged = False
    index = protocol.indexed().index

    def apply_due_faults() -> None:
        nonlocal applied, skipped
        while pending and pending[0].at_interaction <= interactions:
            fault = pending.pop(0)
            affected = 0
            for _ in range(fault.count):
                configuration = scheduler.configuration
                victim = _pick_state(configuration, fault.state, rng)
                if victim is None:
                    continue
                if fault.kind == "crash":
                    if configuration.size <= 2:
                        continue  # keep the model well-defined
                    scheduler.counts[index[victim]] -= 1
                else:
                    scheduler.counts[index[victim]] -= 1
                    scheduler.counts[index[fault.target_state]] += 1
                applied += 1
                affected += 1
            if affected == 0:
                skipped += 1

    with instrumentation.phase("run"):
        while interactions < max_steps:
            apply_due_faults()
            instrumentation.add("silent_checks")
            if _is_silent_consensus(protocol, scheduler.configuration):
                if not pending:
                    converged = True
                    break
                # The configuration is silent but faults are still
                # scheduled: stepping would only burn no-op interactions
                # until the next fault fires.  Fast-forward the
                # interaction clock to it and apply it directly.
                next_at = pending[0].at_interaction
                if next_at >= max_steps:
                    # the remaining faults lie beyond the budget: they are
                    # skipped, and the population *did* reach silent consensus
                    converged = True
                    break
                instrumentation.add(
                    "fast_forwarded_interactions", max(0, next_at - interactions)
                )
                interactions = max(interactions, next_at)
                continue
            scheduler.step()
            interactions += 1

    skipped += len(pending)
    instrumentation.add("interactions", interactions)
    instrumentation.add("faults_applied", applied)
    instrumentation.add("faults_skipped", skipped)
    final = scheduler.configuration
    return FaultyRunResult(
        configuration=final,
        interactions=interactions,
        converged=converged,
        faults_applied=applied,
        survivors=final.size,
        verdict=protocol.output_of(final),
        faults_skipped=skipped,
        instrumentation=instrumentation.snapshot(),
    )
