"""Lightweight instrumentation for the simulation stack.

Every scheduler (exact, batched, fault-injecting) carries an
:class:`Instrumentation` object that accumulates named counters and
wall-clock phase timers.  The counters make internal events observable
— how many tau-leaps were rejected and halved, how often the exact
single-step fallback fired, how many silent-consensus checks a run
performed, how many no-op interactions a fault run fast-forwarded over
— so that "cannot happen" claims and amortisation arguments can be
checked empirically instead of trusted.

The conventions keep the hot paths cheap:

* per-*interaction* work is never counted one increment at a time;
  the run loops add aggregates (``interactions``, ``silent_checks``)
  once per run or per leap;
* schedulers reset their instrumentation in ``reset``, so counters
  describe the most recent run;
* results carry an immutable :class:`InstrumentationSnapshot`, not the
  live object, so stored results do not mutate under later runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

__all__ = ["Instrumentation", "InstrumentationSnapshot"]


@dataclass(frozen=True)
class InstrumentationSnapshot:
    """An immutable copy of counters and phase timers at one instant."""

    counters: Mapping[str, int] = field(default_factory=dict)
    timers: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict form for JSON reports."""
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def counter(self, name: str) -> int:
        """The value of one counter (0 when never incremented)."""
        return self.counters.get(name, 0)


class Instrumentation:
    """Named counters plus wall-clock phase timers.

    >>> inst = Instrumentation()
    >>> inst.add("leaps")
    >>> inst.add("interactions", 500)
    >>> with inst.phase("run"):
    ...     pass
    >>> inst.snapshot().counter("interactions")
    500
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    def add(self, name: str, value: int = 1) -> None:
        """Increment a counter (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + value

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time of the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def clear(self) -> None:
        """Drop all counters and timers (called by scheduler ``reset``)."""
        self.counters.clear()
        self.timers.clear()

    def merge(self, other: "InstrumentationSnapshot") -> None:
        """Fold a snapshot into this object (ensemble aggregation)."""
        for name, value in other.counters.items():
            self.add(name, value)
        for name, value in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + value

    def snapshot(self) -> InstrumentationSnapshot:
        """An immutable copy of the current state."""
        return InstrumentationSnapshot(
            counters=dict(self.counters), timers=dict(self.timers)
        )
