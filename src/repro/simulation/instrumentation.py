"""Back-compat shim: instrumentation moved to :mod:`repro.obs.metrics`.

The counters/timers layer started life here, simulation-only; it is
now the metrics half of the :mod:`repro.obs` observability subsystem,
shared by the simulators and the analysis searches.  Import from
``repro.obs`` in new code; this module keeps the historical names
importable.
"""

from __future__ import annotations

from ..obs.metrics import Instrumentation, InstrumentationSnapshot

__all__ = ["Instrumentation", "InstrumentationSnapshot"]
