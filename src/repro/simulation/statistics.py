"""Time-series statistics of simulated runs.

For studying *how* a protocol converges (phases, bottlenecks, epidemic
waves) the final configuration is not enough; this module records the
full count trajectory of a run at a configurable resolution:

* :class:`TimeSeries` — per-state counts sampled along parallel time,
  with accessors for single-state trajectories, consensus fraction and
  a compact text rendering (sparkline-style) for terminal inspection;
* :func:`record_time_series` — drive a :class:`CountScheduler` (exact)
  or :class:`BatchScheduler` (tau-leaping) and sample every
  ``resolution`` units of parallel time.

The examples use this to show the two phases of threshold protocols
(combining, then the acceptance epidemic); tests use it to assert
conservation laws hold along entire trajectories, not just endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from .fast import BatchScheduler
from .scheduler import CountScheduler, _is_silent_consensus

__all__ = ["TimeSeries", "record_time_series"]

State = Hashable

_SPARK = "▁▂▃▄▅▆▇█"


@dataclass
class TimeSeries:
    """Sampled count trajectories of one simulated run."""

    protocol: PopulationProtocol
    times: List[float] = field(default_factory=list)
    samples: List[Multiset] = field(default_factory=list)

    def record(self, time: float, configuration: Multiset) -> None:
        """Append one sample at the given parallel time."""
        self.times.append(time)
        self.samples.append(configuration)

    @property
    def population(self) -> int:
        """Population size (constant along fault-free runs)."""
        return self.samples[0].size if self.samples else 0

    def counts_of(self, state: State) -> List[int]:
        """The trajectory of one state's count."""
        return [sample[state] for sample in self.samples]

    def consensus_fraction(self, b: int) -> List[float]:
        """Fraction of agents whose state outputs ``b``, over time."""
        keys = [q for q in self.protocol.states if self.protocol.output[q] == b]
        return [
            sample.count(keys) / sample.size if sample.size else 0.0
            for sample in self.samples
        ]

    def final(self) -> Multiset:
        """The last sampled configuration."""
        if not self.samples:
            raise ValueError("empty time series")
        return self.samples[-1]

    def sparkline(self, state: State, width: int = 60) -> str:
        """A terminal-friendly rendering of one state's trajectory."""
        counts = self.counts_of(state)
        if not counts:
            return ""
        if len(counts) > width:
            stride = len(counts) / width
            counts = [counts[int(i * stride)] for i in range(width)]
        peak = max(max(counts), 1)
        chars = [_SPARK[min(len(_SPARK) - 1, (c * len(_SPARK)) // (peak + 1))] for c in counts]
        return f"{state!s:>10} |{''.join(chars)}| peak {peak}"

    def render(self, states: Optional[Sequence[State]] = None, width: int = 60) -> str:
        """Sparklines for several states (default: all populated ones)."""
        if states is None:
            populated = set()
            for sample in self.samples:
                populated.update(sample.support())
            states = [q for q in self.protocol.states if q in populated]
        lines = [f"time 0 .. {self.times[-1]:.1f} (parallel), n = {self.population}"]
        lines.extend(self.sparkline(state, width) for state in states)
        return "\n".join(lines)


def record_time_series(
    protocol: PopulationProtocol,
    inputs,
    max_parallel_time: float,
    resolution: float = 1.0,
    seed: Optional[int] = None,
    use_batch: bool = False,
    stop_on_silent_consensus: bool = True,
) -> TimeSeries:
    """Simulate and sample the configuration every ``resolution`` units.

    ``use_batch=True`` switches to the tau-leaping simulator (for large
    populations); otherwise the exact count-based scheduler is used.
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    series = TimeSeries(protocol=protocol)
    if use_batch:
        scheduler = BatchScheduler(protocol, seed=seed)
    else:
        scheduler = CountScheduler(protocol, seed=seed)
    scheduler.reset(inputs)
    n = scheduler.population
    series.record(0.0, scheduler.configuration)

    steps_per_sample = max(1, int(resolution * n))
    total_budget = int(max_parallel_time * n)
    done = 0
    while done < total_budget:
        if stop_on_silent_consensus and _is_silent_consensus(protocol, scheduler.configuration):
            break
        chunk = min(steps_per_sample, total_budget - done)
        if use_batch:
            done += scheduler.leap(chunk)
        else:
            for _ in range(chunk):
                scheduler.step()
            done += chunk
        series.record(done / n, scheduler.configuration)
    return series
