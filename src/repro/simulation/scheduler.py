"""Exact random-scheduler simulation.

The stochastic semantics behind "parallel time": at each step an
*ordered* pair of distinct agents is chosen uniformly at random and
the (unique, for deterministic protocols) transition of their states
fires.  Parallel time is interactions divided by the population size.

Two exact samplers are provided:

* :class:`AgentListScheduler` — the textbook implementation keeping an
  explicit list of agents.  O(1) per interaction but heavy constants
  and O(population) memory; serves as the naive baseline of experiment
  E10.
* :class:`CountScheduler` — keeps only the state *counts* and samples
  the unordered state pair of the next interaction directly from the
  pair distribution (probability proportional to ``c_p * c_q`` for
  ``p != q`` and ``c_p * (c_p - 1)`` for ``p = q``).  O(|Q|^2) per
  interaction, independent of the population size — the first rung of
  the "simulation is too slow for large populations" ladder (the
  batched :mod:`repro.simulation.fast` is the second).

Both samplers produce identically distributed runs (chi-squared
smoke-tested in the suite) and support seeding for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple, Union

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import IndexedProtocol, PopulationProtocol
from ..obs import get_tracer, progress
from .instrumentation import Instrumentation, InstrumentationSnapshot

__all__ = ["StepOutcome", "AgentListScheduler", "CountScheduler", "SimulationResult"]

State = Hashable


@dataclass(frozen=True)
class StepOutcome:
    """One simulated interaction: the pair met and the states produced."""

    pre: Tuple[State, State]
    post: Tuple[State, State]
    changed: bool


@dataclass
class SimulationResult:
    """Outcome of :meth:`run` on either scheduler.

    Attributes
    ----------
    interactions:
        Number of interactions simulated.
    parallel_time:
        ``interactions / population`` (the standard notion).
    configuration:
        Final configuration (multiset over states).
    converged:
        Whether the stop condition was met (vs the step budget).
    instrumentation:
        Counters and phase timers recorded during the run (steps,
        silent-consensus checks, leap statistics for the batch
        scheduler); ``None`` for results built outside the run loops.
    """

    interactions: int
    population: int
    configuration: Multiset
    converged: bool
    instrumentation: Optional[InstrumentationSnapshot] = None

    @property
    def parallel_time(self) -> float:
        """``interactions / population`` — the standard normalisation."""
        return self.interactions / self.population


class _TransitionTable:
    """Per-unordered-pair transition lookup with uniform tie-breaking."""

    def __init__(self, protocol: PopulationProtocol):
        self.protocol = protocol
        self.table: Dict[Tuple[State, State], List[Tuple[State, State]]] = {}
        for t in protocol.transitions:
            self.table.setdefault((t.p, t.q), []).append((t.p2, t.q2))

    def outcome(self, p: State, q: State, rng: random.Random) -> Tuple[State, State]:
        key = (p, q) if str(p) <= str(q) else (q, p)
        choices = self.table.get(key)
        if choices is None:
            return (p, q)  # implicit identity transition (completeness)
        if len(choices) == 1:
            return choices[0]
        return rng.choice(choices)


class AgentListScheduler:
    """Naive exact simulation over an explicit agent list."""

    def __init__(self, protocol: PopulationProtocol, seed: Optional[int] = None):
        self.protocol = protocol
        self.table = _TransitionTable(protocol)
        self.rng = random.Random(seed)
        self.agents: List[State] = []
        self.instrumentation = Instrumentation()

    def reset(self, inputs: Union[int, Mapping, Multiset]) -> None:
        """Initialise the population to ``IC(inputs)``."""
        configuration = self.protocol.initial_configuration(inputs)
        self.agents = list(configuration.elements())
        self.rng.shuffle(self.agents)
        self.instrumentation.clear()

    @property
    def configuration(self) -> Multiset:
        return Multiset(self.agents)

    def step(self) -> StepOutcome:
        """Simulate one uniformly random interaction."""
        n = len(self.agents)
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        i = self.rng.randrange(n)
        j = self.rng.randrange(n - 1)
        if j >= i:
            j += 1
        p, q = self.agents[i], self.agents[j]
        p2, q2 = self.table.outcome(p, q, self.rng)
        self.agents[i], self.agents[j] = p2, q2
        return StepOutcome(pre=(p, q), post=(p2, q2), changed=(p, q) != (p2, q2) and Multiset([p, q]) != Multiset([p2, q2]))

    def run(self, inputs, max_steps: int, stop_on_silent_consensus: bool = True) -> SimulationResult:
        """Run until silent consensus (if requested) or the step budget."""
        self.reset(inputs)
        return _run_loop(self, max_steps, stop_on_silent_consensus)


class CountScheduler:
    """Exact simulation on state counts: O(|Q|^2) per interaction."""

    def __init__(self, protocol: PopulationProtocol, seed: Optional[int] = None):
        self.protocol = protocol
        self.indexed: IndexedProtocol = protocol.indexed()
        self.table = _TransitionTable(protocol)
        self.rng = random.Random(seed)
        self.counts: List[int] = [0] * self.indexed.n
        self.instrumentation = Instrumentation()

    def reset(self, inputs: Union[int, Mapping, Multiset]) -> None:
        """Initialise the population to ``IC(inputs)``."""
        self.counts = list(self.indexed.initial_counts(inputs))
        self.instrumentation.clear()

    @property
    def configuration(self) -> Multiset:
        return self.indexed.decode(self.counts)

    @property
    def population(self) -> int:
        return sum(self.counts)

    def step(self) -> StepOutcome:
        """Simulate one uniformly random interaction via pair weights."""
        counts = self.counts
        states = self.indexed.states
        n = sum(counts)
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        # sample the unordered pair of *states* involved
        total_weight = n * (n - 1)  # ordered pairs
        pick = self.rng.randrange(total_weight)
        p_index = q_index = -1
        cumulative = 0
        for i, ci in enumerate(counts):
            if ci == 0:
                continue
            # ordered pairs with first agent in state i
            row = ci * (n - 1)
            if pick < cumulative + row:
                p_index = i
                within = pick - cumulative
                # second agent: among the remaining n-1 agents
                second = within % (n - 1)
                # walk the counts, with state i reduced by one
                running = 0
                for j, cj in enumerate(counts):
                    avail = cj - (1 if j == i else 0)
                    if second < running + avail:
                        q_index = j
                        break
                    running += avail
                break
            cumulative += row
        assert p_index >= 0 and q_index >= 0

        p, q = states[p_index], states[q_index]
        p2, q2 = self.table.outcome(p, q, self.rng)
        counts[p_index] -= 1
        counts[q_index] -= 1
        counts[self.indexed.index[p2]] += 1
        counts[self.indexed.index[q2]] += 1
        return StepOutcome(pre=(p, q), post=(p2, q2), changed=Multiset([p, q]) != Multiset([p2, q2]))

    def run(self, inputs, max_steps: int, stop_on_silent_consensus: bool = True) -> SimulationResult:
        """Run until silent consensus (if requested) or the step budget."""
        self.reset(inputs)
        return _run_loop(self, max_steps, stop_on_silent_consensus)


def _is_silent_consensus(protocol: PopulationProtocol, configuration: Multiset) -> bool:
    """Silent (no transition changes anything) and output defined."""
    if protocol.output_of(configuration) is None:
        return False
    for t in protocol.transitions:
        if not t.is_silent and t.enabled_in(configuration) and not t.displacement.is_zero:
            return False
    return True


def _run_loop(scheduler, max_steps: int, stop_on_silent_consensus: bool) -> SimulationResult:
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    protocol = scheduler.protocol
    population = (
        scheduler.population if isinstance(scheduler, CountScheduler) else len(scheduler.agents)
    )
    check_every = max(1, population)  # silence checks are O(|T|); amortise
    instrumentation = scheduler.instrumentation
    silent_checks = 0
    interactions = 0
    converged = False
    # Observability rides the silent-check cadence (one tick per
    # `check_every` interactions), never the per-interaction hot path.
    meter = progress(
        "simulate", lambda: {"interactions": interactions, "population": population}
    )
    with instrumentation.phase("run"), get_tracer().span(
        "simulate.run",
        scheduler=type(scheduler).__name__,
        population=population,
        max_steps=max_steps,
    ) as span:
        while interactions < max_steps:
            if stop_on_silent_consensus and interactions % check_every == 0:
                silent_checks += 1
                meter.tick(check_every)
                if _is_silent_consensus(protocol, scheduler.configuration):
                    converged = True
                    break
            scheduler.step()
            interactions += 1
        else:
            if stop_on_silent_consensus:
                silent_checks += 1
                if _is_silent_consensus(protocol, scheduler.configuration):
                    converged = True
        meter.finish()
        span.add("interactions", interactions)
        span.add("silent_checks", silent_checks)
        span.set(converged=converged)
    instrumentation.add("interactions", interactions)
    instrumentation.add("silent_checks", silent_checks)
    return SimulationResult(
        interactions=interactions,
        population=population,
        configuration=scheduler.configuration,
        converged=converged,
        instrumentation=instrumentation.snapshot(),
    )
