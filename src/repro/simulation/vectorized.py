"""Vectorised ensemble simulation: a whole ``--trials`` batch per step.

The paper's lower bounds live in the large-``n`` regime, and the
ensemble path is where large populations hurt most: ``run_ensemble``
steps every trial through a per-event Python loop, so 64 trials at
``n = 10^6`` cost tens of millions of interpreter iterations.  This
module rebuilds the ensemble struct-of-arrays:

* the whole ensemble is one ``(trials, states)`` int64 count matrix;
* every trial advances **simultaneously** — pair weights are computed
  for all trials in one vectorised expression, the number of
  interactions hitting each transition class is drawn with one batched
  ``rng.multinomial`` call across the trial axis, and displacements are
  applied with a single integer matrix product;
* tau-leap rejection is a per-trial mask: trials whose aggregated
  update would drive a count negative halve their attempt size
  independently (down to single interactions) while the rest of the
  ensemble keeps leaping at full size;
* a trial whose single-interaction leap is still rejected — the
  near-absorption regime where some state holds one or two agents —
  falls back to the exact scalar sampler for that one step, so every
  intermediate row of the matrix is a legal configuration.

As in :class:`~repro.simulation.fast.BatchScheduler`, the tau-leap
approximation touches only *timing statistics* (order ``epsilon``);
invariants are exact: population is conserved per trial at every step,
counts never go negative, and all pair probabilities are computed in
exact integer arithmetic with one final division (float64 subtraction
of ``n(n-1)``-sized products silently corrupts small inert masses once
``n`` passes ``~10^8``).

Convergence detection (silent consensus) and verdict extraction are
vectorised too: enabled-transition masks and output-consensus checks
are evaluated for the whole ensemble between leap rounds, at the same
per-``epsilon * n``-interactions cadence the scalar batch scheduler
uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, _pair
from ..obs import get_tracer, progress
from .instrumentation import Instrumentation, InstrumentationSnapshot

__all__ = ["VectorEnsembleScheduler", "VectorRunResult"]

# n(n-1) must fit in int64 for the vectorised weight arithmetic; the
# exact-integer Python path in the scalar BatchScheduler has no such
# ceiling, so very large populations fall back there.
_MAX_POPULATION = 3_000_000_000


@dataclass(frozen=True)
class VectorRunResult:
    """Per-trial outcome arrays of one vectorised ensemble run.

    All arrays are indexed by trial.  ``parallel_times`` is meaningful
    only where ``converged`` is set (it records the detection time);
    ``verdicts`` holds the consensus output of the *final*
    configuration — possibly ``None`` — for every trial, converged or
    not, mirroring how the scalar ensemble tallies verdicts.
    """

    trials: int
    population: int
    interactions: np.ndarray  # int64 (trials,)
    converged: np.ndarray  # bool (trials,)
    parallel_times: np.ndarray  # float64 (trials,)
    verdicts: Tuple[Optional[int], ...]
    instrumentation: Optional[InstrumentationSnapshot] = None


class VectorEnsembleScheduler:
    """Simultaneous tau-leaping of an entire trial ensemble.

    One scheduler instance owns one ``(trials, states)`` count matrix;
    :meth:`run` is the ensemble analogue of
    :meth:`BatchScheduler.run <repro.simulation.fast.BatchScheduler.run>`
    and feeds :func:`repro.simulation.ensembles.run_ensemble` via
    ``engine="vector"``.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        trials: int,
        seed: Optional[int] = None,
        epsilon: float = 0.05,
    ):
        if trials < 1:
            raise ValueError(f"need at least one trial, got {trials}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.protocol = protocol
        self.indexed = protocol.indexed()
        self.trials = trials
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.counts = np.zeros((trials, self.indexed.n), dtype=np.int64)
        self.instrumentation = Instrumentation()

        # --- transition classes, one column per registered state pair.
        # Outcomes of nondeterministic pairs occupy contiguous rows of
        # the displacement matrix so a per-class uniform split lands in
        # one slice assignment.
        pair_deltas: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}
        for t_index, (i, j) in enumerate(self.indexed.pre_pairs):
            pair_deltas.setdefault((i, j), []).append(self.indexed.deltas[t_index])
        self._pair_keys: List[Tuple[int, int]] = sorted(pair_deltas)
        self._pair_i = np.array([i for i, _ in self._pair_keys], dtype=np.int64)
        self._pair_j = np.array([j for _, j in self._pair_keys], dtype=np.int64)
        self._pair_self = self._pair_i == self._pair_j

        rows: List[Tuple[int, ...]] = []
        starts: List[int] = []
        widths: List[int] = []
        for key in self._pair_keys:
            starts.append(len(rows))
            widths.append(len(pair_deltas[key]))
            rows.extend(pair_deltas[key])
        self._outcomes = np.array(rows, dtype=np.int64).reshape(
            len(rows), self.indexed.n
        )
        self._outcome_start = np.array(starts, dtype=np.int64)
        self._outcome_width = np.array(widths, dtype=np.int64)
        single = self._outcome_width == 1
        self._single_classes = np.nonzero(single)[0]
        self._single_rows = self._outcome_start[single]
        self._multi_classes = [int(p) for p in np.nonzero(~single)[0]]
        # Scalar-fallback view: outcome rows per class, as in BatchScheduler.
        self._pair_outcomes: List[np.ndarray] = [
            self._outcomes[s : s + w]
            for s, w in zip(self._outcome_start, self._outcome_width)
        ]

        # --- non-silent transitions, for the vectorised silence check.
        ns = self.indexed.non_silent
        self._ns_i = np.array(
            [self.indexed.pre_pairs[t][0] for t in ns], dtype=np.int64
        )
        self._ns_j = np.array(
            [self.indexed.pre_pairs[t][1] for t in ns], dtype=np.int64
        )
        self._ns_need = np.where(self._ns_i == self._ns_j, 2, 1)

        self._outputs = np.array(self.indexed.output, dtype=np.int64)
        self._output_values = sorted(set(self.indexed.output))
        self._population = 0

    # ------------------------------------------------------------------

    def reset(self, inputs: Union[int, Mapping, Multiset]) -> None:
        """Initialise every trial to ``IC(inputs)``."""
        row = np.array(self.indexed.initial_counts(inputs), dtype=np.int64)
        n = int(row.sum())
        if n > _MAX_POPULATION:
            raise ProtocolError(
                f"population {n} exceeds the vector engine's int64 pair-weight "
                f"range (max {_MAX_POPULATION}); use the scalar BatchScheduler"
            )
        self.counts = np.tile(row, (self.trials, 1))
        self._population = n
        self.instrumentation.clear()

    @property
    def population(self) -> int:
        """Agents per trial (identical across trials, conserved exactly)."""
        return self._population

    def configuration(self, trial: int) -> Multiset:
        """The current configuration of one trial, as a multiset."""
        return self.indexed.decode([int(c) for c in self.counts[trial]])

    def pair_distribution(self):
        """The one-step pair distribution shared by every trial.

        Same contract as :meth:`BatchScheduler.pair_distribution
        <repro.simulation.fast.BatchScheduler.pair_distribution>` —
        ``(keys, probabilities, inert)`` computed in exact integer
        arithmetic from trial 0's counts — so the conformance harness
        can hold the vector engine to the analytic one-step law.
        """
        n = self._population
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        c = self.counts[0]
        weights = [
            int(c[i]) * (int(c[i]) - 1) if i == j else 2 * int(c[i]) * int(c[j])
            for i, j in self._pair_keys
        ]
        total = n * (n - 1)
        inert_mass = total - sum(weights)
        states = self.indexed.states
        keys = [_pair(states[i], states[j]) for i, j in self._pair_keys]
        probabilities = np.array([w / total for w in weights], dtype=np.float64)
        return keys, probabilities, inert_mass / total

    # ------------------------------------------------------------------
    # One batched leap attempt across the whole ensemble
    # ------------------------------------------------------------------

    def _attempt(self, k: np.ndarray) -> np.ndarray:
        """Sample one leap of ``k[t]`` interactions per trial.

        Returns the aggregated displacement matrix ``(trials, states)``;
        trials with ``k[t] == 0`` get a zero row.  The caller decides
        acceptance — this method never mutates ``self.counts``.
        """
        c = self.counts
        ci = c[:, self._pair_i]
        cj = c[:, self._pair_j]
        # int64 exact: reset() bounds the population so n(n-1) fits.
        weights = np.where(self._pair_self, ci * (ci - 1), 2 * ci * cj)
        n = self._population
        total = n * (n - 1)
        pvals = np.empty((self.trials, len(self._pair_keys) + 1), dtype=np.float64)
        pvals[:, :-1] = weights
        pvals[:, -1] = total - weights.sum(axis=1)  # exact integer inert mass
        pvals /= float(total)
        pvals /= pvals.sum(axis=1, keepdims=True)

        hits = self.rng.multinomial(k, pvals)  # (trials, classes + 1)
        outcome_hits = np.zeros((self.trials, len(self._outcomes)), dtype=np.int64)
        outcome_hits[:, self._single_rows] = hits[:, self._single_classes]
        for p in self._multi_classes:
            start = int(self._outcome_start[p])
            width = int(self._outcome_width[p])
            outcome_hits[:, start : start + width] = self.rng.multinomial(
                hits[:, p], np.full(width, 1.0 / width)
            )
        return outcome_hits @ self._outcomes

    def _exact_step(self, trial: int) -> None:
        """Exact scalar interaction for one near-absorption trial.

        Mirrors :meth:`BatchScheduler._exact_step`: one draw over all
        ``n(n-1)`` ordered pairs with exact integer weights (inert
        meetings included, per the pair law).
        """
        self.instrumentation.add("exact_steps")
        c = self.counts[trial]
        weights = [
            int(c[i]) * (int(c[i]) - 1) if i == j else 2 * int(c[i]) * int(c[j])
            for i, j in self._pair_keys
        ]
        n = self._population
        pick = int(self.rng.integers(n * (n - 1)))
        for index, weight in enumerate(weights):
            if pick < weight:
                outcomes = self._pair_outcomes[index]
                if len(outcomes) == 1:
                    outcome = outcomes[0]
                else:
                    outcome = outcomes[int(self.rng.integers(len(outcomes)))]
                self.counts[trial] = c + outcome
                return
            pick -= weight
        # inert pair met: the interaction happened, nothing changed

    def leap(self, request: np.ndarray) -> np.ndarray:
        """Advance trial ``t`` by ``request[t]`` interactions; all at once.

        Rejection handling is per trial: a trial whose aggregated
        update would go negative halves its *own* attempt size (masked,
        so accepted trials are untouched) and retries in the next
        batched draw; at attempt size 1 it falls back to one exact
        scalar step.  A trial's attempt size stays at its halved value
        for the remainder of this call — near absorption the pair
        distribution genuinely shifts every few interactions, so
        regrowing the leap within the round would just re-reject.

        Returns the interactions actually performed per trial, which
        always equals ``request`` (the exact fallback guarantees
        progress, as in the scalar scheduler).
        """
        if self._population < 2:
            raise ProtocolError("population must have at least two agents")
        request = np.asarray(request, dtype=np.int64)
        if request.shape != (self.trials,):
            raise ValueError(
                f"request must have shape ({self.trials},), got {request.shape}"
            )
        if (request < 0).any():
            raise ValueError("per-trial interaction requests must be >= 0")
        self.instrumentation.add("leap_calls")
        remaining = request.copy()
        attempt = remaining.copy()
        while True:
            active = remaining > 0
            if not active.any():
                break
            np.minimum(attempt, remaining, out=attempt)
            k = np.where(active, attempt, 0)
            delta = self._attempt(k)
            updated = self.counts + delta
            rejected = (updated < 0).any(axis=1) & active
            accepted = active & ~rejected
            if accepted.any():
                self.counts[accepted] = updated[accepted]
                remaining[accepted] -= k[accepted]
            if rejected.any():
                self.instrumentation.add("leap_rejections", int(rejected.sum()))
                fallback = rejected & (attempt <= 1)
                for trial in np.nonzero(fallback)[0]:
                    self._exact_step(int(trial))
                    remaining[trial] -= 1
                if fallback.any():
                    self.instrumentation.add("leap_fallbacks", int(fallback.sum()))
                halved = rejected & (attempt > 1)
                if halved.any():
                    self.instrumentation.add("leap_halvings", int(halved.sum()))
                    attempt[halved] //= 2
        self.instrumentation.add("leap_interactions", int(request.sum()))
        return request.copy()

    # ------------------------------------------------------------------
    # Vectorised convergence detection
    # ------------------------------------------------------------------

    def silent_consensus_mask(self) -> np.ndarray:
        """Per-trial silent-consensus flags for the current matrix.

        A trial is in silent consensus when no displacement-changing
        transition is enabled *and* its consensus output is defined —
        the vectorised form of
        :func:`~repro.simulation.scheduler._is_silent_consensus`.
        """
        if self._ns_i.size:
            enabled = (self.counts[:, self._ns_i] >= self._ns_need) & (
                self.counts[:, self._ns_j] >= 1
            )
            silent = ~enabled.any(axis=1)
        else:
            silent = np.ones(self.trials, dtype=bool)
        _, defined = self._verdict_arrays()
        return silent & defined

    def _verdict_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(verdict_values, defined)`` per trial.

        ``verdict_values[t]`` is meaningful only where ``defined[t]``:
        a consensus exists iff exactly one output value has a present
        state.
        """
        present = self.counts > 0
        has = np.stack(
            [(present & (self._outputs == v)).any(axis=1) for v in self._output_values]
        )
        defined = has.sum(axis=0) == 1
        values = np.array(self._output_values, dtype=np.int64)[has.argmax(axis=0)]
        return values, defined

    def verdicts(self) -> Tuple[Optional[int], ...]:
        """Consensus output per trial (``None`` where undefined)."""
        values, defined = self._verdict_arrays()
        return tuple(
            int(v) if ok else None for v, ok in zip(values, defined)
        )

    # ------------------------------------------------------------------

    def run(
        self,
        inputs,
        max_parallel_time: float,
        stop_on_silent_consensus: bool = True,
    ) -> VectorRunResult:
        """Run every trial up to ``max_parallel_time`` units of parallel time.

        The consensus check runs between leap rounds — every
        ``epsilon * n`` interactions, the same cadence as the scalar
        batch scheduler — and converged trials are masked out of all
        further leaping while the rest of the ensemble continues.
        """
        if not (math.isfinite(max_parallel_time) and max_parallel_time > 0):
            raise ValueError(
                f"max_parallel_time must be positive and finite, got {max_parallel_time}"
            )
        self.reset(inputs)
        n = self._population
        leap_size = max(1, int(self.epsilon * n))
        budget = max(1, math.ceil(max_parallel_time * n))
        done = np.zeros(self.trials, dtype=np.int64)
        converged = np.zeros(self.trials, dtype=bool)
        conv_times = np.zeros(self.trials, dtype=np.float64)
        silent_checks = 0
        meter = progress(
            "simulate-vector",
            lambda: {
                "interactions": int(done.sum()),
                "trials_converged": int(converged.sum()),
                "population": n,
            },
        )
        with self.instrumentation.phase("run"), get_tracer().span(
            "simulate.run",
            scheduler=type(self).__name__,
            population=n,
            trials=self.trials,
            leap_size=leap_size,
        ) as span:
            while True:
                if stop_on_silent_consensus:
                    silent_checks += 1
                    newly = self.silent_consensus_mask() & ~converged
                    if newly.any():
                        conv_times[newly] = done[newly] / n
                        converged |= newly
                active = ~converged & (done < budget)
                if not active.any():
                    break
                request = np.where(
                    active, np.minimum(leap_size, budget - done), 0
                )
                done += self.leap(request)
                meter.tick(int(request.sum()))
            meter.finish()
            total = int(done.sum())
            span.add("interactions", total)
            span.add("silent_checks", silent_checks)
            span.set(trials_converged=int(converged.sum()))
        self.instrumentation.add("interactions", total)
        self.instrumentation.add("silent_checks", silent_checks)
        self.instrumentation.add("runs", self.trials)
        return VectorRunResult(
            trials=self.trials,
            population=n,
            interactions=done,
            converged=converged,
            parallel_times=conv_times,
            verdicts=self.verdicts(),
            instrumentation=self.instrumentation.snapshot(),
        )
