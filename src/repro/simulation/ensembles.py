"""Ensemble simulation: verdict probabilities over many seeded runs.

For protocols whose convergence is slow (the 4-state majority on
narrow margins) a single run within a step budget is uninformative;
what one wants is the *distribution*: with what probability has the
population reached the correct silent consensus by parallel time
``t``?  Ensembles estimate exactly that:

* :func:`run_ensemble` — ``trials`` independent seeded runs with a
  common budget, tallied into a :class:`EnsembleResult`;
* :class:`EnsembleResult` — convergence rate, verdict distribution,
  parallel-time quantiles, and a Wilson confidence interval on the
  probability of the expected verdict.

Two engines produce the same statistics:

* ``engine="count"`` (default) — the exact per-event
  :class:`~repro.simulation.scheduler.CountScheduler`, one seeded run
  per trial, optionally fanned out over a process pool (``jobs``);
* ``engine="vector"`` — the struct-of-arrays
  :class:`~repro.simulation.vectorized.VectorEnsembleScheduler`, which
  steps the whole trial batch simultaneously with batched numpy draws
  (tau-leap timing approximation, exact invariants).  Orders of
  magnitude faster at large populations; runs in-process, so ``jobs``
  is ignored.

Used by the examples for the majority margin study and by the tests
as a statistical cross-check between simulators.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.protocol import PopulationProtocol
from ..parallel import TaskEnvelope, chunk_ranges, default_chunk_size, run_tasks
from .instrumentation import Instrumentation, InstrumentationSnapshot
from .scheduler import CountScheduler

__all__ = ["EnsembleResult", "run_ensemble", "ENSEMBLE_ENGINES"]

ENSEMBLE_ENGINES = ("count", "vector")


@dataclass(frozen=True)
class EnsembleResult:
    """Aggregated outcome of an ensemble of seeded runs.

    ``instrumentation`` sums the per-run counters and timers over the
    whole ensemble (total interactions simulated, total silent checks,
    total wall-clock in the run loops).
    """

    trials: int
    converged: int
    verdicts: Dict[Optional[int], int]
    parallel_times: Tuple[float, ...]
    instrumentation: Optional[InstrumentationSnapshot] = None

    @property
    def convergence_rate(self) -> float:
        """Fraction of runs reaching silent consensus within budget."""
        return self.converged / self.trials if self.trials else 0.0

    def verdict_probability(self, verdict: Optional[int]) -> float:
        """Empirical probability of ending with the given verdict."""
        return self.verdicts.get(verdict, 0) / self.trials if self.trials else 0.0

    def wilson_interval(self, verdict: int, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for ``P(final verdict = verdict)``."""
        n = self.trials
        if n == 0:
            return (0.0, 1.0)
        p = self.verdict_probability(verdict)
        denominator = 1 + z * z / n
        centre = (p + z * z / (2 * n)) / denominator
        margin = (z / denominator) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def time_quantile(self, q: float) -> float:
        """Parallel-time quantile over the *converged* runs."""
        if not self.parallel_times:
            return math.inf
        ordered = sorted(self.parallel_times)
        position = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[position]

    def summary(self) -> str:
        """One-paragraph digest for console output."""
        lines = [
            f"{self.trials} runs, {self.converged} converged "
            f"({100 * self.convergence_rate:.0f}%)",
        ]
        for verdict in sorted(self.verdicts, key=str):
            lines.append(
                f"  verdict {verdict}: {self.verdicts[verdict]} runs "
                f"({100 * self.verdict_probability(verdict):.0f}%)"
            )
        if self.parallel_times:
            lines.append(
                f"  parallel time (converged runs): median {self.time_quantile(0.5):.1f}, "
                f"p90 {self.time_quantile(0.9):.1f}"
            )
        return "\n".join(lines)


def _ensemble_chunk(task: TaskEnvelope) -> List[Tuple[Optional[int], bool, float, Optional[InstrumentationSnapshot]]]:
    """Run one contiguous block of trials; per-trial rows in trial order.

    Trial ``t`` always runs under ``seed + t`` regardless of which
    worker executes the block, so the merged ensemble is bit-identical
    for every ``jobs``/``chunk_size`` combination.
    """
    protocol, inputs, start, stop, seed, budget = task.payload
    rows = []
    for trial in range(start, stop):
        scheduler = CountScheduler(protocol, seed=seed + trial)
        result = scheduler.run(inputs, max_steps=budget)
        rows.append(
            (
                protocol.output_of(result.configuration),
                result.converged,
                result.parallel_time,
                result.instrumentation,
            )
        )
    return rows


def _run_vector_ensemble(
    protocol: PopulationProtocol,
    inputs,
    trials: int,
    max_parallel_time: float,
    seed: int,
    epsilon: float,
) -> EnsembleResult:
    """The ``engine="vector"`` path: one scheduler, the whole batch."""
    from .vectorized import VectorEnsembleScheduler

    scheduler = VectorEnsembleScheduler(
        protocol, trials=trials, seed=seed, epsilon=epsilon
    )
    run = scheduler.run(inputs, max_parallel_time=max_parallel_time)
    verdicts: Dict[Optional[int], int] = {}
    times: List[float] = []
    for trial, verdict in enumerate(run.verdicts):
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        if run.converged[trial]:
            times.append(float(run.parallel_times[trial]))
    return EnsembleResult(
        trials=trials,
        converged=int(run.converged.sum()),
        verdicts=verdicts,
        parallel_times=tuple(times),
        instrumentation=run.instrumentation,
    )


def run_ensemble(
    protocol: PopulationProtocol,
    inputs,
    trials: int = 50,
    max_parallel_time: float = 500.0,
    seed: int = 0,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    engine: str = "count",
    epsilon: float = 0.05,
) -> EnsembleResult:
    """Run ``trials`` independent seeded simulations and aggregate.

    Non-converged runs are tallied under their (possibly ``None``)
    final-output verdict but excluded from the time quantiles.
    ``jobs > 1`` distributes trial chunks over a process pool; trial
    seeds stay ``seed + trial``, so the aggregate is identical for any
    worker count.

    ``engine="vector"`` switches to the vectorised batch scheduler
    (see the module docstring): dramatically faster at large
    populations, statistically equivalent, and deterministic for a
    fixed ``seed`` — but a different sampler consuming one RNG stream,
    so its trajectories are not bit-matched to the count engine's.
    ``epsilon`` is its tau-leap size (fraction of a unit of parallel
    time per leap); the count engine ignores it.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    if engine not in ENSEMBLE_ENGINES:
        raise ValueError(
            f"unknown ensemble engine {engine!r} (known: {', '.join(ENSEMBLE_ENGINES)})"
        )
    if not (math.isfinite(max_parallel_time) and max_parallel_time > 0):
        raise ValueError(
            f"max_parallel_time must be positive and finite, got {max_parallel_time}"
        )
    if engine == "vector":
        return _run_vector_ensemble(
            protocol, inputs, trials, max_parallel_time, seed, epsilon
        )
    verdicts: Dict[Optional[int], int] = {}
    times: List[float] = []
    converged = 0
    aggregate = Instrumentation()
    population = protocol.initial_configuration(inputs).size
    # Ceil, not truncate: a positive time budget must simulate at least
    # one interaction (mirrors the batch scheduler's budget fix).
    budget = max(1, math.ceil(max_parallel_time * population))
    if chunk_size is None:
        chunk_size = default_chunk_size(trials, jobs)
    envelopes = run_tasks(
        _ensemble_chunk,
        [
            (protocol, inputs, start, stop, seed, budget)
            for start, stop in chunk_ranges(trials, chunk_size)
        ],
        jobs=jobs,
        label="ensemble",
    )
    for envelope in envelopes:
        for verdict, trial_converged, parallel_time, snapshot in envelope.value:
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
            if trial_converged:
                converged += 1
                times.append(parallel_time)
            if snapshot is not None:
                aggregate.merge(snapshot)
    aggregate.add("runs", trials)
    return EnsembleResult(
        trials=trials,
        converged=converged,
        verdicts=verdicts,
        parallel_times=tuple(times),
        instrumentation=aggregate.snapshot(),
    )
