"""Batched (tau-leaping) simulation for very large populations.

Exact per-interaction simulation costs O(1)-ish per step but needs
``Theta(n log n)`` interactions for typical protocols to converge —
at ``n = 10^6`` that is tens of millions of Python-level iterations.
This is the "simulation is easy but too slow for large populations"
problem flagged in the reproduction brief, and the classic remedy from
stochastic chemical kinetics applies directly (population protocols
*are* chemical reaction networks): **tau-leaping**.

:class:`BatchScheduler` advances the system by ``k`` interactions at a
time, assuming the pair distribution stays fixed within the leap:

1. compute the ordered-pair probabilities
   ``P[i, j] = c_i (c_j - [i = j]) / (n (n - 1))``;
2. draw a multinomial sample of how many of the ``k`` interactions hit
   each state pair (and, for nondeterministic protocols, which
   transition of the pair fires);
3. apply all displacements at once.

If the aggregated update would drive a count negative the leap is
rejected and retried with ``k / 2`` (down to exact single steps), so
trajectories always remain legal configurations.  The leap size is
``epsilon * n`` interactions, i.e. a fixed fraction of a unit of
parallel time; ``epsilon`` trades accuracy for speed exactly as in
Gillespie tau-leaping.

The approximation error affects only *timing statistics* (order
``epsilon``), never invariants: population size is conserved exactly
and every intermediate configuration is a genuine configuration.

Pair probabilities are computed in exact integer arithmetic and
divided once at the end: above ``n ~ 10^8`` the products ``n(n-1)``
exceed ``2^53``, and the earlier float64 pipeline (weights summed and
subtracted from the total as floats) let the rounding error of the big
products swamp small inert-pair masses — a silent distortion of the
leap distribution's low-probability classes at exactly the population
scales this scheduler exists for.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, _pair
from ..obs import get_tracer, progress
from .instrumentation import Instrumentation
from .scheduler import SimulationResult, _is_silent_consensus

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Approximate large-population simulation via multinomial leaps."""

    def __init__(
        self,
        protocol: PopulationProtocol,
        seed: Optional[int] = None,
        epsilon: float = 0.05,
    ):
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.protocol = protocol
        self.indexed = protocol.indexed()
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.counts = np.zeros(self.indexed.n, dtype=np.int64)
        self.instrumentation = Instrumentation()

        # Precompute, per unordered state pair with at least one
        # non-identity transition, the list of outcome displacement
        # vectors (identity outcomes contribute zero vectors so the
        # nondeterministic split stays faithful).
        n_states = self.indexed.n
        pair_deltas: Dict[Tuple[int, int], List[np.ndarray]] = {}
        for t_index, (i, j) in enumerate(self.indexed.pre_pairs):
            delta = np.array(self.indexed.deltas[t_index], dtype=np.int64)
            pair_deltas.setdefault((i, j), []).append(delta)
        self._pair_keys: List[Tuple[int, int]] = sorted(pair_deltas)
        self._pair_outcomes: List[np.ndarray] = [
            np.stack(pair_deltas[key]) for key in self._pair_keys
        ]

    # ------------------------------------------------------------------

    def reset(self, inputs: Union[int, Mapping, Multiset]) -> None:
        """Initialise the population to ``IC(inputs)``."""
        self.counts = np.array(self.indexed.initial_counts(inputs), dtype=np.int64)
        self.instrumentation.clear()

    @property
    def population(self) -> int:
        """Current number of agents (conserved exactly)."""
        return int(self.counts.sum())

    @property
    def configuration(self) -> Multiset:
        """Current configuration as a multiset over states."""
        return self.indexed.decode([int(c) for c in self.counts])

    # ------------------------------------------------------------------

    def _integer_pair_weights(self) -> Tuple[List[int], int, int]:
        """Exact ordered-pair weights: ``(weights, total, inert)``.

        All three are arbitrary-precision integers: for ``n`` above
        ``~10^8`` the products ``n(n-1)`` exceed ``2^53``, so computing
        the inert-pair mass as a float64 subtraction silently corrupts
        the low-probability classes (the rounding error of the big
        products dwarfs a small true inert mass).  Keeping the weights
        integral until the single final division makes every class
        probability correctly rounded.
        """
        c = self.counts
        n = int(c.sum())
        weights = [
            int(c[i]) * (int(c[i]) - 1) if i == j else 2 * int(c[i]) * int(c[j])
            for i, j in self._pair_keys
        ]
        total = n * (n - 1)
        inert = total - sum(weights)  # exact: pairs with no registered transition
        return weights, total, inert

    def pair_distribution(self):
        """The one-step pair distribution the next leap will sample from.

        Returns ``(keys, probabilities, inert)``: the registered
        unordered state pairs, their meeting probabilities in the
        current configuration, and the probability mass of inert pairs
        (pairs with no registered transition).  Exposed so that the
        conformance harness can compare the leap distribution against
        the analytic one-step semantics.
        """
        n = self.population
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        states = self.indexed.states
        keys = [_pair(states[i], states[j]) for i, j in self._pair_keys]
        weights, total, inert_mass = self._integer_pair_weights()
        # Big-int true division is correctly rounded, so each class
        # probability is exact to the last float64 bit even when the
        # weights themselves exceed 2^53.
        probabilities = np.array([w / total for w in weights], dtype=np.float64)
        inert = inert_mass / total
        return keys, probabilities, inert

    def _exact_step(self) -> int:
        """One exact interaction drawn over all ``n(n-1)`` ordered pairs.

        Fallback for a rejected single-interaction leap.  The draw
        covers *every* ordered pair — registered transitions and inert
        meetings alike, exactly the pair law — with integer weights, so
        the step is exact; a pair that is sampled is by construction
        available, and firing one of its registered transitions (or
        nothing, for an inert meeting) can never drive a count
        negative.  Recorded under the ``exact_steps`` instrumentation
        counter so conformance sweeps can tell fallback steps from
        genuine leaps.
        """
        self.instrumentation.add("exact_steps")
        c = self.counts
        weights, total, _ = self._integer_pair_weights()
        pick = int(self.rng.integers(total))
        for index, weight in enumerate(weights):
            if pick < weight:
                outcomes = self._pair_outcomes[index]
                if len(outcomes) == 1:
                    outcome = outcomes[0]
                else:
                    outcome = outcomes[int(self.rng.integers(len(outcomes)))]
                self.counts = c + outcome
                return 1
            pick -= weight
        return 1  # inert pair met: the interaction happened, nothing changed

    def leap(self, interactions: int) -> int:
        """Advance by up to ``interactions`` interactions in one leap.

        Returns the number of interactions actually performed (the
        leap recursively halves on rejection, so it may be smaller
        when counts are nearly depleted).
        """
        n = self.population
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        if interactions <= 0:
            return 0
        self.instrumentation.add("leap_calls")
        weights, total_pairs, inert = self._integer_pair_weights()
        probabilities = np.array(
            [w / total_pairs for w in weights] + [inert / total_pairs],
            dtype=np.float64,
        )
        probabilities = probabilities / probabilities.sum()

        sample = self.rng.multinomial(interactions, probabilities)
        delta = np.zeros_like(self.counts)
        for index, hits in enumerate(sample[:-1]):
            if hits == 0:
                continue
            outcomes = self._pair_outcomes[index]
            if len(outcomes) == 1:
                delta += hits * outcomes[0]
            else:
                split = self.rng.multinomial(hits, np.full(len(outcomes), 1.0 / len(outcomes)))
                for outcome, count in zip(outcomes, split):
                    delta += count * outcome

        updated = self.counts + delta
        if (updated < 0).any():
            self.instrumentation.add("leap_rejections")
            if interactions == 1:
                # A rejected single-interaction leap must still advance
                # (returning 0 here would loop `run` forever); fall back
                # to one exact draw over the n(n-1) ordered pairs.
                self.instrumentation.add("leap_fallbacks")
                done = self._exact_step()
                self.instrumentation.add("leap_interactions", done)
                return done
            # halve and retry; the recursive calls do their own accounting
            self.instrumentation.add("leap_halvings")
            done = self.leap(interactions // 2)
            return done + self.leap(interactions - interactions // 2)
        self.counts = updated
        self.instrumentation.add("leap_interactions", interactions)
        return interactions

    def run(
        self,
        inputs,
        max_parallel_time: float,
        stop_on_silent_consensus: bool = True,
    ) -> SimulationResult:
        """Simulate up to ``max_parallel_time`` units (interactions / n)."""
        if not (math.isfinite(max_parallel_time) and max_parallel_time > 0):
            raise ValueError(
                f"max_parallel_time must be positive and finite, got {max_parallel_time}"
            )
        self.reset(inputs)
        n = self.population
        leap_size = max(1, int(self.epsilon * n))
        # Ceil, not truncate: any positive time budget must perform at
        # least one interaction (int() turned a small budget on a small
        # population into a silent zero-interaction "result").
        budget = max(1, math.ceil(max_parallel_time * n))
        interactions = 0
        converged = False
        silent_checks = 0
        meter = progress(
            "simulate-batch", lambda: {"interactions": interactions, "population": n}
        )
        with self.instrumentation.phase("run"), get_tracer().span(
            "simulate.run",
            scheduler=type(self).__name__,
            population=n,
            leap_size=leap_size,
        ) as span:
            while interactions < budget:
                if stop_on_silent_consensus:
                    silent_checks += 1
                    if _is_silent_consensus(self.protocol, self.configuration):
                        converged = True
                        break
                done = self.leap(min(leap_size, budget - interactions))
                interactions += done
                meter.tick(done)
            else:
                if stop_on_silent_consensus:
                    silent_checks += 1
                    if _is_silent_consensus(self.protocol, self.configuration):
                        converged = True
            meter.finish()
            span.add("interactions", interactions)
            span.add("silent_checks", silent_checks)
            span.set(converged=converged)
        self.instrumentation.add("interactions", interactions)
        self.instrumentation.add("silent_checks", silent_checks)
        return SimulationResult(
            interactions=interactions,
            population=n,
            configuration=self.configuration,
            converged=converged,
            instrumentation=self.instrumentation.snapshot(),
        )
