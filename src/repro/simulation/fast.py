"""Batched (tau-leaping) simulation for very large populations.

Exact per-interaction simulation costs O(1)-ish per step but needs
``Theta(n log n)`` interactions for typical protocols to converge —
at ``n = 10^6`` that is tens of millions of Python-level iterations.
This is the "simulation is easy but too slow for large populations"
problem flagged in the reproduction brief, and the classic remedy from
stochastic chemical kinetics applies directly (population protocols
*are* chemical reaction networks): **tau-leaping**.

:class:`BatchScheduler` advances the system by ``k`` interactions at a
time, assuming the pair distribution stays fixed within the leap:

1. compute the ordered-pair probabilities
   ``P[i, j] = c_i (c_j - [i = j]) / (n (n - 1))``;
2. draw a multinomial sample of how many of the ``k`` interactions hit
   each state pair (and, for nondeterministic protocols, which
   transition of the pair fires);
3. apply all displacements at once.

If the aggregated update would drive a count negative the leap is
rejected and retried with ``k / 2`` (down to exact single steps), so
trajectories always remain legal configurations.  The leap size is
``epsilon * n`` interactions, i.e. a fixed fraction of a unit of
parallel time; ``epsilon`` trades accuracy for speed exactly as in
Gillespie tau-leaping.

The approximation error affects only *timing statistics* (order
``epsilon``), never invariants: population size is conserved exactly
and every intermediate configuration is a genuine configuration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from .scheduler import SimulationResult, _is_silent_consensus

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Approximate large-population simulation via multinomial leaps."""

    def __init__(
        self,
        protocol: PopulationProtocol,
        seed: Optional[int] = None,
        epsilon: float = 0.05,
    ):
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.protocol = protocol
        self.indexed = protocol.indexed()
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.counts = np.zeros(self.indexed.n, dtype=np.int64)

        # Precompute, per unordered state pair with at least one
        # non-identity transition, the list of outcome displacement
        # vectors (identity outcomes contribute zero vectors so the
        # nondeterministic split stays faithful).
        n_states = self.indexed.n
        pair_deltas: Dict[Tuple[int, int], List[np.ndarray]] = {}
        for t_index, (i, j) in enumerate(self.indexed.pre_pairs):
            delta = np.array(self.indexed.deltas[t_index], dtype=np.int64)
            pair_deltas.setdefault((i, j), []).append(delta)
        self._pair_keys: List[Tuple[int, int]] = sorted(pair_deltas)
        self._pair_outcomes: List[np.ndarray] = [
            np.stack(pair_deltas[key]) for key in self._pair_keys
        ]

    # ------------------------------------------------------------------

    def reset(self, inputs: Union[int, Mapping, Multiset]) -> None:
        """Initialise the population to ``IC(inputs)``."""
        self.counts = np.array(self.indexed.initial_counts(inputs), dtype=np.int64)

    @property
    def population(self) -> int:
        """Current number of agents (conserved exactly)."""
        return int(self.counts.sum())

    @property
    def configuration(self) -> Multiset:
        """Current configuration as a multiset over states."""
        return self.indexed.decode([int(c) for c in self.counts])

    # ------------------------------------------------------------------

    def _pair_weights(self) -> np.ndarray:
        """Unnormalised ordered-pair weights per registered state pair."""
        c = self.counts
        weights = np.empty(len(self._pair_keys), dtype=np.float64)
        for index, (i, j) in enumerate(self._pair_keys):
            if i == j:
                weights[index] = float(c[i]) * float(c[i] - 1)
            else:
                weights[index] = 2.0 * float(c[i]) * float(c[j])
        return weights

    def leap(self, interactions: int) -> int:
        """Advance by up to ``interactions`` interactions in one leap.

        Returns the number of interactions actually performed (the
        leap recursively halves on rejection, so it may be smaller
        when counts are nearly depleted).
        """
        n = self.population
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        if interactions <= 0:
            return 0
        weights = self._pair_weights()
        total_pairs = float(n) * float(n - 1)
        inert = total_pairs - weights.sum()  # pairs with no registered transition
        probabilities = np.append(weights, max(inert, 0.0)) / total_pairs
        probabilities = probabilities / probabilities.sum()

        sample = self.rng.multinomial(interactions, probabilities)
        delta = np.zeros_like(self.counts)
        for index, hits in enumerate(sample[:-1]):
            if hits == 0:
                continue
            outcomes = self._pair_outcomes[index]
            if len(outcomes) == 1:
                delta += hits * outcomes[0]
            else:
                split = self.rng.multinomial(hits, np.full(len(outcomes), 1.0 / len(outcomes)))
                for outcome, count in zip(outcomes, split):
                    delta += count * outcome

        updated = self.counts + delta
        if (updated < 0).any():
            if interactions == 1:
                return 0  # cannot happen: single steps sample only enabled pairs
            done = self.leap(interactions // 2)
            return done + self.leap(interactions - interactions // 2)
        self.counts = updated
        return interactions

    def run(
        self,
        inputs,
        max_parallel_time: float,
        stop_on_silent_consensus: bool = True,
    ) -> SimulationResult:
        """Simulate up to ``max_parallel_time`` units (interactions / n)."""
        self.reset(inputs)
        n = self.population
        leap_size = max(1, int(self.epsilon * n))
        budget = int(max_parallel_time * n)
        interactions = 0
        converged = False
        while interactions < budget:
            if stop_on_silent_consensus and _is_silent_consensus(
                self.protocol, self.configuration
            ):
                converged = True
                break
            interactions += self.leap(min(leap_size, budget - interactions))
        else:
            if stop_on_silent_consensus and _is_silent_consensus(
                self.protocol, self.configuration
            ):
                converged = True
        return SimulationResult(
            interactions=interactions,
            population=n,
            configuration=self.configuration,
            converged=converged,
        )
