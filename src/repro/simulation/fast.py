"""Batched (tau-leaping) simulation for very large populations.

Exact per-interaction simulation costs O(1)-ish per step but needs
``Theta(n log n)`` interactions for typical protocols to converge —
at ``n = 10^6`` that is tens of millions of Python-level iterations.
This is the "simulation is easy but too slow for large populations"
problem flagged in the reproduction brief, and the classic remedy from
stochastic chemical kinetics applies directly (population protocols
*are* chemical reaction networks): **tau-leaping**.

:class:`BatchScheduler` advances the system by ``k`` interactions at a
time, assuming the pair distribution stays fixed within the leap:

1. compute the ordered-pair probabilities
   ``P[i, j] = c_i (c_j - [i = j]) / (n (n - 1))``;
2. draw a multinomial sample of how many of the ``k`` interactions hit
   each state pair (and, for nondeterministic protocols, which
   transition of the pair fires);
3. apply all displacements at once.

If the aggregated update would drive a count negative the leap is
rejected and retried with ``k / 2`` (down to exact single steps), so
trajectories always remain legal configurations.  The leap size is
``epsilon * n`` interactions, i.e. a fixed fraction of a unit of
parallel time; ``epsilon`` trades accuracy for speed exactly as in
Gillespie tau-leaping.

The approximation error affects only *timing statistics* (order
``epsilon``), never invariants: population size is conserved exactly
and every intermediate configuration is a genuine configuration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.errors import ProtocolError
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, _pair
from ..obs import get_tracer, progress
from .instrumentation import Instrumentation
from .scheduler import SimulationResult, _is_silent_consensus

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Approximate large-population simulation via multinomial leaps."""

    def __init__(
        self,
        protocol: PopulationProtocol,
        seed: Optional[int] = None,
        epsilon: float = 0.05,
    ):
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.protocol = protocol
        self.indexed = protocol.indexed()
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.counts = np.zeros(self.indexed.n, dtype=np.int64)
        self.instrumentation = Instrumentation()

        # Precompute, per unordered state pair with at least one
        # non-identity transition, the list of outcome displacement
        # vectors (identity outcomes contribute zero vectors so the
        # nondeterministic split stays faithful).
        n_states = self.indexed.n
        pair_deltas: Dict[Tuple[int, int], List[np.ndarray]] = {}
        for t_index, (i, j) in enumerate(self.indexed.pre_pairs):
            delta = np.array(self.indexed.deltas[t_index], dtype=np.int64)
            pair_deltas.setdefault((i, j), []).append(delta)
        self._pair_keys: List[Tuple[int, int]] = sorted(pair_deltas)
        self._pair_outcomes: List[np.ndarray] = [
            np.stack(pair_deltas[key]) for key in self._pair_keys
        ]

    # ------------------------------------------------------------------

    def reset(self, inputs: Union[int, Mapping, Multiset]) -> None:
        """Initialise the population to ``IC(inputs)``."""
        self.counts = np.array(self.indexed.initial_counts(inputs), dtype=np.int64)
        self.instrumentation.clear()

    @property
    def population(self) -> int:
        """Current number of agents (conserved exactly)."""
        return int(self.counts.sum())

    @property
    def configuration(self) -> Multiset:
        """Current configuration as a multiset over states."""
        return self.indexed.decode([int(c) for c in self.counts])

    # ------------------------------------------------------------------

    def _pair_weights(self) -> np.ndarray:
        """Unnormalised ordered-pair weights per registered state pair."""
        c = self.counts
        weights = np.empty(len(self._pair_keys), dtype=np.float64)
        for index, (i, j) in enumerate(self._pair_keys):
            if i == j:
                weights[index] = float(c[i]) * float(c[i] - 1)
            else:
                weights[index] = 2.0 * float(c[i]) * float(c[j])
        return weights

    def pair_distribution(self):
        """The one-step pair distribution the next leap will sample from.

        Returns ``(keys, probabilities, inert)``: the registered
        unordered state pairs, their meeting probabilities in the
        current configuration, and the probability mass of inert pairs
        (pairs with no registered transition).  Exposed so that the
        conformance harness can compare the leap distribution against
        the analytic one-step semantics.
        """
        n = self.population
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        states = self.indexed.states
        keys = [_pair(states[i], states[j]) for i, j in self._pair_keys]
        probabilities = self._pair_weights() / (float(n) * float(n - 1))
        inert = max(0.0, 1.0 - float(probabilities.sum()))
        return keys, probabilities, inert

    def _exact_step(self) -> int:
        """One exact interaction sampled from *enabled* pairs only.

        Fallback for a rejected single-interaction leap: integer pair
        weights make enabled-pair sampling exact, and one firing of an
        enabled transition can never drive a count negative.  Inert
        meetings (no registered transition) still consume the
        interaction, preserving the pair distribution.
        """
        c = self.counts
        n = int(c.sum())
        weights = [
            int(c[i]) * (int(c[i]) - 1) if i == j else 2 * int(c[i]) * int(c[j])
            for i, j in self._pair_keys
        ]
        pick = int(self.rng.integers(n * (n - 1)))
        for index, weight in enumerate(weights):
            if pick < weight:
                outcomes = self._pair_outcomes[index]
                if len(outcomes) == 1:
                    outcome = outcomes[0]
                else:
                    outcome = outcomes[int(self.rng.integers(len(outcomes)))]
                self.counts = c + outcome
                return 1
            pick -= weight
        return 1  # inert pair met: the interaction happened, nothing changed

    def leap(self, interactions: int) -> int:
        """Advance by up to ``interactions`` interactions in one leap.

        Returns the number of interactions actually performed (the
        leap recursively halves on rejection, so it may be smaller
        when counts are nearly depleted).
        """
        n = self.population
        if n < 2:
            raise ProtocolError("population must have at least two agents")
        if interactions <= 0:
            return 0
        self.instrumentation.add("leap_calls")
        weights = self._pair_weights()
        total_pairs = float(n) * float(n - 1)
        inert = total_pairs - weights.sum()  # pairs with no registered transition
        probabilities = np.append(weights, max(inert, 0.0)) / total_pairs
        probabilities = probabilities / probabilities.sum()

        sample = self.rng.multinomial(interactions, probabilities)
        delta = np.zeros_like(self.counts)
        for index, hits in enumerate(sample[:-1]):
            if hits == 0:
                continue
            outcomes = self._pair_outcomes[index]
            if len(outcomes) == 1:
                delta += hits * outcomes[0]
            else:
                split = self.rng.multinomial(hits, np.full(len(outcomes), 1.0 / len(outcomes)))
                for outcome, count in zip(outcomes, split):
                    delta += count * outcome

        updated = self.counts + delta
        if (updated < 0).any():
            self.instrumentation.add("leap_rejections")
            if interactions == 1:
                # A rejected single-interaction leap must still advance
                # (returning 0 here would loop `run` forever); fall back
                # to an exact step over enabled pairs.
                self.instrumentation.add("leap_fallbacks")
                done = self._exact_step()
                self.instrumentation.add("leap_interactions", done)
                return done
            # halve and retry; the recursive calls do their own accounting
            self.instrumentation.add("leap_halvings")
            done = self.leap(interactions // 2)
            return done + self.leap(interactions - interactions // 2)
        self.counts = updated
        self.instrumentation.add("leap_interactions", interactions)
        return interactions

    def run(
        self,
        inputs,
        max_parallel_time: float,
        stop_on_silent_consensus: bool = True,
    ) -> SimulationResult:
        """Simulate up to ``max_parallel_time`` units (interactions / n)."""
        self.reset(inputs)
        n = self.population
        leap_size = max(1, int(self.epsilon * n))
        budget = int(max_parallel_time * n)
        interactions = 0
        converged = False
        silent_checks = 0
        meter = progress(
            "simulate-batch", lambda: {"interactions": interactions, "population": n}
        )
        with self.instrumentation.phase("run"), get_tracer().span(
            "simulate.run",
            scheduler=type(self).__name__,
            population=n,
            leap_size=leap_size,
        ) as span:
            while interactions < budget:
                if stop_on_silent_consensus:
                    silent_checks += 1
                    if _is_silent_consensus(self.protocol, self.configuration):
                        converged = True
                        break
                done = self.leap(min(leap_size, budget - interactions))
                interactions += done
                meter.tick(done)
            else:
                if stop_on_silent_consensus:
                    silent_checks += 1
                    if _is_silent_consensus(self.protocol, self.configuration):
                        converged = True
            meter.finish()
            span.add("interactions", interactions)
            span.add("silent_checks", silent_checks)
            span.set(converged=converged)
        self.instrumentation.add("interactions", interactions)
        self.instrumentation.add("silent_checks", silent_checks)
        return SimulationResult(
            interactions=interactions,
            population=n,
            configuration=self.configuration,
            converged=converged,
            instrumentation=self.instrumentation.snapshot(),
        )
