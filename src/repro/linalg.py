"""Exact rational linear algebra shared by the analysis modules.

Small, dependency-free routines over :class:`fractions.Fraction` —
used for invariant inference (left kernels of incidence/displacement
matrices) where floating point would silently destroy exactness.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Sequence

__all__ = ["rational_null_space", "normalise_integer_vector"]


def rational_null_space(rows: Sequence[Sequence[Fraction]], width: int) -> List[List[Fraction]]:
    """A basis of ``{w : row . w = 0 for every row}``.

    ``rows`` is the constraint matrix (one row per constraint, ``width``
    columns); the result spans the right null space, computed by exact
    Gauss-Jordan elimination.
    """
    matrix = [list(map(Fraction, row)) for row in rows]
    pivot_cols: List[int] = []
    r = 0
    for c in range(width):
        pivot = None
        for i in range(r, len(matrix)):
            if matrix[i][c] != 0:
                pivot = i
                break
        if pivot is None:
            continue
        matrix[r], matrix[pivot] = matrix[pivot], matrix[r]
        factor = matrix[r][c]
        matrix[r] = [x / factor for x in matrix[r]]
        for i in range(len(matrix)):
            if i != r and matrix[i][c] != 0:
                scale = matrix[i][c]
                matrix[i] = [a - scale * b for a, b in zip(matrix[i], matrix[r])]
        pivot_cols.append(c)
        r += 1
        if r == len(matrix):
            break
    free_cols = [c for c in range(width) if c not in pivot_cols]
    basis: List[List[Fraction]] = []
    for free in free_cols:
        vector = [Fraction(0)] * width
        vector[free] = Fraction(1)
        for row_index, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -matrix[row_index][free]
        basis.append(vector)
    return basis


def normalise_integer_vector(vector: Sequence[Fraction]) -> List[Fraction]:
    """Scale to coprime integers with a positive leading non-zero entry."""
    denominators = [x.denominator for x in vector]
    lcm = 1
    for d in denominators:
        lcm = lcm * d // gcd(lcm, d)
    ints = [int(x * lcm) for x in vector]
    g = 0
    for x in ints:
        g = gcd(g, abs(x))
    if g > 1:
        ints = [x // g for x in ints]
    for x in ints:
        if x != 0:
            if x < 0:
                ints = [-y for y in ints]
            break
    return [Fraction(x) for x in ints]
