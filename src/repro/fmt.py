"""Formatting helpers: aligned text tables for experiment reports.

The benchmark harnesses print the paper-vs-measured tables of
EXPERIMENTS.md through these helpers so every experiment renders
consistently (and the recorded outputs diff cleanly between runs).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_big", "section"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    materialised: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialised.append([str(cell) for cell in row])
    widths = [max(len(row[i]) for row in materialised) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(materialised):
        line = " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def format_big(value: int, digit_limit: int = 12) -> str:
    """Format a (possibly astronomically large) integer readably.

    Small values print exactly; larger ones as ``~10^k``; callers
    holding only ``log2`` exponents should format those directly.
    """
    digits = len(str(value)) if value >= 0 else len(str(-value)) + 1
    if digits <= digit_limit:
        return str(value)
    exponent = digits - 1
    lead = str(value)[:3]
    return f"~{lead[0]}.{lead[1:]}e{exponent}"


def section(title: str) -> str:
    """A visually separated section header for console reports."""
    bar = "=" * max(8, len(title))
    return f"\n{bar}\n{title}\n{bar}"
