"""repro — population protocols and the state complexity of counting.

A reproduction of *Lower Bounds on the State Complexity of Population
Protocols* (Czerner, Esparza, Leroux — PODC 2021) as a usable library:

* the population protocol model with leaders (``repro.core``);
* verified protocol constructions — thresholds (flat/binary), majority,
  modulo, leader counters, boolean combinators (``repro.protocols``);
* exact analyses — verification by bottom-SCC consensus, stable sets
  and their bases, saturation, concentration (``repro.analysis``);
* reachability substrates — exact graphs, Karp-Miller coverability,
  pseudo-reachability (``repro.reachability``);
* Hilbert bases of Diophantine systems / Pottier bounds
  (``repro.diophantine``);
* WQO machinery — Dickson's lemma, controlled bad sequences, the Fast
  Growing Hierarchy (``repro.wqo``);
* the paper's bounds and checkable pumping certificates
  (``repro.bounds``);
* stochastic simulation at small and very large scale
  (``repro.simulation``).

Quickstart::

    from repro import binary_threshold, verify_protocol, counting
    protocol = binary_threshold(5)
    report = verify_protocol(protocol, counting(5), max_input_size=8)
    assert report.ok
"""

from .analysis import (
    BasisElement,
    check_basis_element,
    check_downward_closure,
    infer_basis,
    is_stable,
    saturation_sequence,
    stable_slice,
    verify_input,
    verify_protocol,
)
from .bounds import (
    PumpingCertificate,
    SaturationCertificate,
    best_leaderless_witness,
    beta,
    gap_table,
    log2_beta,
    log2_theorem_5_9_final,
    section4_certificate,
    section5_certificate,
    theorem_5_9_bound,
    xi,
)
from .core import (
    EMPTY,
    And,
    Constant,
    Modulo,
    Multiset,
    Not,
    Or,
    PopulationProtocol,
    Predicate,
    Threshold,
    Transition,
    counting,
    majority,
)
from .protocols import (
    ProtocolBuilder,
    approximate_majority,
    binary_threshold,
    conjunction,
    disjunction,
    double_exp_threshold,
    example_2_1_binary,
    example_2_1_flat,
    flat_threshold,
    leader_binary_threshold,
    leader_unary_threshold,
    leroux_leader_threshold,
    majority_protocol,
    modulo_protocol,
    negation,
)
from .simulation import BatchScheduler, CountScheduler, measure_convergence, record_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Multiset",
    "EMPTY",
    "PopulationProtocol",
    "Transition",
    "Predicate",
    "Threshold",
    "Modulo",
    "And",
    "Or",
    "Not",
    "Constant",
    "counting",
    "majority",
    # protocols
    "ProtocolBuilder",
    "flat_threshold",
    "example_2_1_flat",
    "binary_threshold",
    "example_2_1_binary",
    "majority_protocol",
    "modulo_protocol",
    "leader_unary_threshold",
    "leader_binary_threshold",
    "approximate_majority",
    "double_exp_threshold",
    "leroux_leader_threshold",
    "negation",
    "conjunction",
    "disjunction",
    # analysis
    "verify_protocol",
    "verify_input",
    "stable_slice",
    "is_stable",
    "check_downward_closure",
    "infer_basis",
    "check_basis_element",
    "BasisElement",
    "saturation_sequence",
    # bounds
    "beta",
    "log2_beta",
    "xi",
    "theorem_5_9_bound",
    "log2_theorem_5_9_final",
    "PumpingCertificate",
    "SaturationCertificate",
    "section4_certificate",
    "section5_certificate",
    "best_leaderless_witness",
    "gap_table",
    # simulation
    "CountScheduler",
    "BatchScheduler",
    "measure_convergence",
    "record_trace",
]
