"""Petri nets / Vector Addition Systems: the paper's ambient theory.

Population protocols *are* Petri nets (a place per state, a net
transition per protocol transition, tokens are agents), and the
paper's toolbox — Rackoff coverability, Karp–Miller, the state
equation, the hardness results of §4.1 [15, 16, 22, 23] — is Petri net
theory.  This subpackage provides the general model, so the substrate
results can be exercised beyond the conservative two-in/two-out
special case:

* :class:`NetTransition` — arbitrary pre/post multisets over places
  (arity free; token count need not be conserved);
* :class:`PetriNet` — places + transitions, firing semantics on
  markings (multisets over places);
* :func:`from_protocol` — the adapter embedding a population protocol;
* classic structure tests: conservativity, the incidence matrix,
  pure-VAS shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ProtocolError, TransitionNotEnabled
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol

__all__ = ["NetTransition", "PetriNet", "from_protocol"]

Place = Hashable


@dataclass(frozen=True)
class NetTransition:
    """A Petri net transition: consume ``pre``, produce ``post``."""

    name: str
    pre: Multiset
    post: Multiset

    def __post_init__(self) -> None:
        if not self.pre.is_natural or not self.post.is_natural:
            raise ProtocolError(f"transition {self.name}: pre/post must be natural multisets")

    @property
    def delta(self) -> Multiset:
        """The displacement ``post - pre``."""
        return self.post - self.pre

    def enabled_in(self, marking: Multiset) -> bool:
        """Is the transition enabled (``marking >= pre``)?"""
        return marking >= self.pre

    def fire(self, marking: Multiset) -> Multiset:
        """Fire the transition; raises when not enabled."""
        if not self.enabled_in(marking):
            raise TransitionNotEnabled(f"{self.name} not enabled in {marking.pretty()}")
        return marking - self.pre + self.post

    def __str__(self) -> str:
        return f"{self.name}: {self.pre.pretty()} -> {self.post.pretty()}"


@dataclass(frozen=True)
class PetriNet:
    """A Petri net ``(P, T)``; markings are multisets over ``P``."""

    places: Tuple[Place, ...]
    transitions: Tuple[NetTransition, ...]
    name: str = "net"

    def __post_init__(self) -> None:
        place_set = set(self.places)
        if len(place_set) != len(self.places):
            raise ProtocolError("places must be distinct")
        for t in self.transitions:
            touched = t.pre.support() | t.post.support()
            unknown = touched - place_set
            if unknown:
                raise ProtocolError(f"transition {t.name} touches unknown places {unknown}")

    # ------------------------------------------------------------------

    @property
    def num_places(self) -> int:
        """The number of places ``|P|``."""
        return len(self.places)

    @property
    def num_transitions(self) -> int:
        """The number of transitions ``|T|``."""
        return len(self.transitions)

    def enabled(self, marking: Multiset) -> List[NetTransition]:
        """All transitions enabled in the marking."""
        return [t for t in self.transitions if t.enabled_in(marking)]

    def successors(self, marking: Multiset) -> List[Tuple[NetTransition, Multiset]]:
        """All one-step successors (changing ones only)."""
        result = []
        for t in self.transitions:
            if t.enabled_in(marking) and not t.delta.is_zero:
                result.append((t, t.fire(marking)))
        return result

    def fire_sequence(self, marking: Multiset, names: Iterable[str]) -> Multiset:
        """Fire transitions by name; raises on disabled steps."""
        by_name = {t.name: t for t in self.transitions}
        current = marking
        for name in names:
            current = by_name[name].fire(current)
        return current

    # ------------------------------------------------------------------

    @property
    def is_conservative(self) -> bool:
        """Do all transitions preserve the token count?

        Population protocols always are; general nets need not be.
        """
        return all(t.pre.size == t.post.size for t in self.transitions)

    @property
    def is_ordinary(self) -> bool:
        """Are all arc weights 1 (each place at most once per side)?"""
        return all(
            all(c == 1 for c in t.pre.values()) and all(c == 1 for c in t.post.values())
            for t in self.transitions
        )

    def incidence_matrix(self) -> List[List[int]]:
        """Rows = places, columns = transitions; entries ``delta``."""
        return [[t.delta[p] for t in self.transitions] for p in self.places]

    def describe(self) -> str:
        """A readable multi-line description of the net."""
        lines = [
            f"net {self.name}: {self.num_places} places, {self.num_transitions} transitions",
            "  places: " + ", ".join(map(str, self.places)),
        ]
        lines.extend(f"  {t}" for t in self.transitions)
        return "\n".join(lines)


def from_protocol(protocol: PopulationProtocol) -> PetriNet:
    """The Petri net of a population protocol: a place per state.

    Every protocol transition ``p, q -> p', q'`` becomes the net
    transition consuming ``<p, q>`` and producing ``<p', q'>``; the net
    is conservative by construction (the embedding the paper uses when
    importing VAS results).
    """
    transitions = tuple(
        NetTransition(name=str(t), pre=t.pre, post=t.post)
        for t in protocol.transitions
    )
    return PetriNet(
        places=protocol.states,
        transitions=transitions,
        name=f"net({protocol.name})",
    )
