"""Petri nets / Vector Addition Systems: the general substrate."""

from .analysis import is_p_invariant, marking_value, p_invariants, t_invariants
from .model import NetTransition, PetriNet, from_protocol
from .reachability import (
    OMEGA,
    CoverabilityTree,
    is_bounded,
    is_coverable,
    karp_miller,
    place_bounds,
    reachable_markings,
)

__all__ = [
    "NetTransition",
    "PetriNet",
    "from_protocol",
    "OMEGA",
    "CoverabilityTree",
    "reachable_markings",
    "karp_miller",
    "is_coverable",
    "is_bounded",
    "place_bounds",
    "p_invariants",
    "is_p_invariant",
    "t_invariants",
    "marking_value",
]
