"""Structural analysis of Petri nets: P- and T-invariants.

* **P-invariants** (place invariants): weights ``w`` over places with
  ``w . delta_t = 0`` for every transition — weighted token counts
  conserved by every firing.  Exact rational left-kernel computation,
  the net-level generalisation of
  :mod:`repro.analysis.invariants` (population protocols always have
  the all-ones P-invariant; general nets may have none).
* **T-invariants**: natural firing-count vectors with zero net effect
  (Hilbert basis of ``C . x = 0`` for the incidence matrix ``C``),
  the cycles of the net at the Parikh level.

Both notions feed standard boundedness/liveness arguments; the tests
exercise them on protocol nets and on non-conservative hand-built
nets.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping

from ..core.multiset import Multiset
from ..diophantine.pottier import solve_equalities
from ..linalg import normalise_integer_vector, rational_null_space
from .model import PetriNet

__all__ = ["p_invariants", "is_p_invariant", "t_invariants", "marking_value"]


def p_invariants(net: PetriNet) -> List[Dict[object, Fraction]]:
    """A basis of all rational P-invariants (may be empty)."""
    rows = [
        [Fraction(t.delta[p]) for p in net.places]
        for t in net.transitions
        if not t.delta.is_zero
    ]
    if not rows:
        rows = [[Fraction(0)] * net.num_places]
    kernel = rational_null_space(rows, net.num_places)
    return [
        {p: w for p, w in zip(net.places, normalise_integer_vector(vector))}
        for vector in kernel
    ]


def is_p_invariant(net: PetriNet, weights: Mapping[object, object]) -> bool:
    """Does ``w . delta_t = 0`` hold for every transition?"""
    w = {p: Fraction(weights.get(p, 0)) for p in net.places}
    for t in net.transitions:
        if sum(w[p] * t.delta[p] for p in t.delta.support()) != 0:
            return False
    return True


def marking_value(weights: Mapping[object, object], marking: Multiset) -> Fraction:
    """``w . M`` — conserved along firings when ``w`` is a P-invariant."""
    return sum(
        (Fraction(weights.get(p, 0)) * count for p, count in marking.items()),
        Fraction(0),
    )


def t_invariants(net: PetriNet, frontier_budget: int = 2_000_000) -> List[Multiset]:
    """Minimal non-zero T-invariants (Hilbert basis of ``C x = 0``).

    Returned as multisets over transition *names*.
    """
    matrix = net.incidence_matrix()
    if not matrix:
        matrix = [[0] * net.num_transitions]
    basis = solve_equalities(matrix, frontier_budget=frontier_budget)
    return [
        Multiset({t.name: c for t, c in zip(net.transitions, vector) if c})
        for vector in basis
    ]
