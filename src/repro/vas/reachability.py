"""Reachability and coverability for general Petri nets.

Unlike population protocols (token-conservative, hence finite
reachability per marking size), general nets can be unbounded; the
procedures here are the classical ones:

* :func:`reachable_markings` — exact forward exploration with a node
  budget (complete for bounded nets; budget-guarded otherwise);
* :func:`karp_miller` — the Karp–Miller tree with omega-acceleration:
  terminating, computes the coverability set's downward closure;
* :func:`is_coverable` / :func:`is_bounded` / :func:`place_bounds` —
  the standard decision procedures on top of it.

The protocol-specialised twins live in
:mod:`repro.reachability.coverability`; these net-level versions
handle arbitrary arities and non-conservative token counts (needed
e.g. to model the counter machines behind the §4.1 hardness results).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.errors import SearchBudgetExceeded
from ..core.multiset import Multiset
from .model import NetTransition, PetriNet

__all__ = [
    "OMEGA",
    "reachable_markings",
    "karp_miller",
    "is_coverable",
    "is_bounded",
    "place_bounds",
]

OMEGA = math.inf

ExtendedMarking = Tuple[Union[int, float], ...]


def _encode(net: PetriNet, marking: Multiset) -> Tuple[int, ...]:
    return tuple(marking[p] for p in net.places)


def _decode(net: PetriNet, dense: Sequence[Union[int, float]]) -> Multiset:
    return Multiset({p: int(c) for p, c in zip(net.places, dense) if c})


def reachable_markings(
    net: PetriNet,
    initial: Multiset,
    node_budget: int = 100_000,
) -> Set[Multiset]:
    """Exact forward closure of ``initial`` (budget-guarded BFS).

    Raises :class:`SearchBudgetExceeded` when the frontier exceeds the
    budget — for unbounded nets this *will* happen; use
    :func:`karp_miller` to decide boundedness first.
    """
    from collections import deque

    seen = {initial}
    queue = deque([initial])
    while queue:
        marking = queue.popleft()
        for _, successor in net.successors(marking):
            if successor not in seen:
                seen.add(successor)
                if len(seen) > node_budget:
                    raise SearchBudgetExceeded(
                        f"reachability exploration exceeded {node_budget} markings "
                        "(the net may be unbounded; try karp_miller)"
                    )
                queue.append(successor)
    return seen


class CoverabilityTree:
    """Result of the net-level Karp–Miller construction."""

    def __init__(self, net: PetriNet, limits: Set[ExtendedMarking]):
        self.net = net
        self.limits = limits

    def covers(self, target: Multiset) -> bool:
        """Is some reachable marking ``>= target``?"""
        dense = _encode(self.net, target)
        return any(all(t <= l for t, l in zip(dense, limit)) for limit in self.limits)

    def place_bound(self, place) -> Union[int, float]:
        """The supremum of the place's token count over reachable markings."""
        index = self.net.places.index(place)
        return max((limit[index] for limit in self.limits), default=0)


def karp_miller(
    net: PetriNet,
    initial: Multiset,
    node_budget: int = 200_000,
) -> CoverabilityTree:
    """Karp–Miller with omega-acceleration (classic tree semantics).

    Branches stop on exact repetition of an ancestor; acceleration
    compares against ancestors only (the sound variant — see the note
    in :mod:`repro.reachability.coverability`).
    """
    root: ExtendedMarking = _encode(net, initial)
    pres = [_encode(net, t.pre) for t in net.transitions]
    deltas = [tuple(t.delta[p] for p in net.places) for t in net.transitions]

    nodes: Set[ExtendedMarking] = {root}
    stack: List[Tuple[ExtendedMarking, Tuple[ExtendedMarking, ...]]] = [(root, ())]

    def accelerate(marking: ExtendedMarking, ancestors) -> ExtendedMarking:
        result = list(marking)
        for ancestor in ancestors:
            if all(a <= m for a, m in zip(ancestor, marking)) and ancestor != marking:
                for i in range(len(result)):
                    if ancestor[i] < marking[i]:
                        result[i] = OMEGA
        return tuple(result)

    while stack:
        marking, ancestors = stack.pop()
        if marking in ancestors:
            continue
        chain = ancestors + (marking,)
        for pre, delta in zip(pres, deltas):
            if not all(p <= m for p, m in zip(pre, marking)):
                continue
            if all(d == 0 for d in delta):
                continue
            successor = tuple(
                m if m == OMEGA else m + d for m, d in zip(marking, delta)
            )
            successor = accelerate(successor, chain)
            nodes.add(successor)
            if len(nodes) > node_budget:
                raise SearchBudgetExceeded(f"Karp-Miller exceeded {node_budget} nodes")
            stack.append((successor, chain))

    limits = {
        m for m in nodes
        if not any(m != other and all(a <= b for a, b in zip(m, other)) for other in nodes)
    }
    return CoverabilityTree(net, limits)


def is_coverable(
    net: PetriNet,
    initial: Multiset,
    target: Multiset,
    node_budget: int = 200_000,
) -> bool:
    """Can some reachable marking dominate ``target``?"""
    return karp_miller(net, initial, node_budget=node_budget).covers(target)


def is_bounded(net: PetriNet, initial: Multiset, node_budget: int = 200_000) -> bool:
    """Is the reachability set finite (no omega in the coverability set)?"""
    tree = karp_miller(net, initial, node_budget=node_budget)
    return all(all(x != OMEGA for x in limit) for limit in tree.limits)


def place_bounds(
    net: PetriNet,
    initial: Multiset,
    node_budget: int = 200_000,
) -> Dict[object, Union[int, float]]:
    """Per-place token bounds over the reachable set (``inf`` = unbounded)."""
    tree = karp_miller(net, initial, node_budget=node_budget)
    return {place: tree.place_bound(place) for place in net.places}
