"""Stable configurations (Definition 2) and their exact computation.

A configuration ``C`` is *b-stable* if every configuration reachable
from ``C`` has output ``b``; ``SC_b`` is the set of b-stable
configurations and ``SC = SC_0 U SC_1``.  The paper's Section 3 builds
on two structural facts, both made executable here:

* ``SC_b`` is downward closed (Lemma 3.1) — verified empirically by
  :func:`check_downward_closure`;
* ``SC_b`` has a base of small norm (Lemma 3.2) — inferred and checked
  by :mod:`repro.analysis.basis`.

Since transitions conserve agent count, ``SC_b`` decomposes into
slices by population size, and each slice is computable exactly:
``C`` of size ``m`` is b-stable iff ``C`` cannot reach (inside the
size-``m`` slice) any configuration populating a state with output
``!= b``.  That is one backward closure from the "bad" configurations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cache.decorator import cached_analysis
from ..core.multiset import Multiset
from ..core.protocol import IndexedProtocol, PopulationProtocol
from ..obs import get_tracer
from ..reachability.graph import ReachabilityGraph

__all__ = [
    "is_stable",
    "stability_of",
    "stable_slice",
    "StableSlice",
    "check_downward_closure",
]

Config = Tuple[int, ...]


def stability_of(
    protocol: PopulationProtocol,
    configuration: Multiset,
    node_budget: int = 2_000_000,
) -> Optional[int]:
    """Return ``b`` if the configuration is b-stable, else ``None``.

    Exact: explores the forward closure of the configuration.
    """
    indexed = protocol.indexed()
    start = indexed.encode(configuration)
    graph = ReachabilityGraph.from_roots(protocol, [start], node_budget=node_budget)
    verdict = indexed.output_of(start)
    if verdict is None:
        return None
    for node in graph.nodes:
        if indexed.output_of(node) != verdict:
            return None
    return verdict


def is_stable(
    protocol: PopulationProtocol,
    configuration: Multiset,
    b: int,
    node_budget: int = 2_000_000,
) -> bool:
    """Is the configuration b-stable (Definition 2)?"""
    return stability_of(protocol, configuration, node_budget=node_budget) == b


class StableSlice:
    """The size-``m`` slice of ``SC_0``, ``SC_1`` and ``SC``.

    Built by :func:`stable_slice`.  Configurations are dense tuples;
    use :meth:`decode` / the ``*_multisets`` helpers for multisets.
    """

    def __init__(
        self,
        indexed: IndexedProtocol,
        size: int,
        stable0: FrozenSet[Config],
        stable1: FrozenSet[Config],
        all_configs: FrozenSet[Config],
    ):
        self.indexed = indexed
        self.size = size
        self.stable0 = stable0
        self.stable1 = stable1
        self.all_configs = all_configs

    @property
    def stable(self) -> FrozenSet[Config]:
        """The slice of ``SC = SC_0 U SC_1``."""
        return self.stable0 | self.stable1

    def membership(self, configuration: Multiset) -> Optional[int]:
        """``b`` when the configuration lies in this slice of ``SC_b``."""
        dense = self.indexed.encode(configuration)
        if dense in self.stable0:
            return 0
        if dense in self.stable1:
            return 1
        return None

    def decode(self, config: Config) -> Multiset:
        """Dense tuple back to a multiset over states."""
        return self.indexed.decode(config)

    def stable_multisets(self, b: int) -> List[Multiset]:
        """The slice of ``SC_b`` as multisets (sorted for determinism)."""
        source = self.stable0 if b == 0 else self.stable1
        return [self.indexed.decode(c) for c in sorted(source)]

    def __repr__(self) -> str:
        return (
            f"StableSlice(size={self.size}, |SC_0|={len(self.stable0)}, "
            f"|SC_1|={len(self.stable1)}, total={len(self.all_configs)})"
        )


def _slice_params(arguments):
    return {
        "size": int(arguments["size"]),
        "node_budget": int(arguments["node_budget"]),
    }


def _slice_encode(result: StableSlice, protocol: PopulationProtocol):
    dense = lambda configs: [list(c) for c in sorted(configs)]
    return {
        "size": result.size,
        "stable0": dense(result.stable0),
        "stable1": dense(result.stable1),
        "all": dense(result.all_configs),
    }


def _slice_decode(payload, protocol: PopulationProtocol) -> StableSlice:
    indexed = protocol.indexed()

    def configs(rows):
        decoded = frozenset(tuple(int(c) for c in row) for row in rows)
        for config in decoded:
            if len(config) != indexed.n:
                raise ValueError("configuration width does not match the protocol")
        return decoded

    return StableSlice(
        indexed=indexed,
        size=int(payload["size"]),
        stable0=configs(payload["stable0"]),
        stable1=configs(payload["stable1"]),
        all_configs=configs(payload["all"]),
    )


@cached_analysis(
    "stable.slice",
    params=_slice_params,
    encode=_slice_encode,
    decode=_slice_decode,
)
def stable_slice(
    protocol: PopulationProtocol,
    size: int,
    node_budget: int = 2_000_000,
) -> StableSlice:
    """Compute the size-``size`` slices of ``SC_0`` and ``SC_1`` exactly.

    One full-slice reachability graph and two backward closures: the
    non-b-stable configurations are exactly those that can reach a
    configuration populating some state with output ``1 - b``.
    Memoised through :mod:`repro.cache` when the active store is on.
    """
    indexed = protocol.indexed()
    with get_tracer().span(
        "stable.slice", size=size, states=indexed.n, protocol=protocol.name
    ) as span:
        graph = ReachabilityGraph.full_slice(protocol, size, node_budget=node_budget)

        bad_for: Dict[int, List[Config]] = {0: [], 1: []}
        for config in graph.nodes:
            populated_outputs = {indexed.output[i] for i, c in enumerate(config) if c}
            if 1 in populated_outputs:
                bad_for[0].append(config)  # populates an output-1 state => not 0-stable
            if 0 in populated_outputs:
                bad_for[1].append(config)

        unstable0 = graph.backward_closure(bad_for[0])
        unstable1 = graph.backward_closure(bad_for[1])
        all_configs = frozenset(graph.nodes)
        span.add("configurations", len(all_configs))
        span.add("stable0", len(all_configs - unstable0))
        span.add("stable1", len(all_configs - unstable1))
    return StableSlice(
        indexed=indexed,
        size=size,
        stable0=frozenset(all_configs - unstable0),
        stable1=frozenset(all_configs - unstable1),
        all_configs=all_configs,
    )


def check_downward_closure(
    protocol: PopulationProtocol,
    max_size: int,
    b: int,
    min_size: int = 2,
    node_budget: int = 2_000_000,
) -> Optional[Tuple[Multiset, Multiset]]:
    """Empirically check Lemma 3.1 on all slices up to ``max_size``.

    Returns ``None`` when downward closure holds (as it must); if a
    violating pair ``C' <= C`` with ``C`` stable but ``C'`` not is ever
    found, it is returned — that would falsify Lemma 3.1 (or reveal a
    bug in the slice computation; the property tests rely on this).

    Only pairs whose smaller member still has size >= ``min_size`` are
    considered (configurations need two agents).
    """
    slices = {m: stable_slice(protocol, m, node_budget=node_budget) for m in range(min_size, max_size + 1)}
    indexed = protocol.indexed()
    for m in range(min_size, max_size + 1):
        sl = slices[m]
        stable_sets = {0: sl.stable0, 1: sl.stable1}
        for config in stable_sets[b]:
            # remove one agent in every possible way
            for i, count in enumerate(config):
                if count == 0:
                    continue
                smaller = tuple(c - 1 if j == i else c for j, c in enumerate(config))
                if sum(smaller) < min_size:
                    continue
                smaller_slice = slices[m - 1]
                smaller_set = smaller_slice.stable0 if b == 0 else smaller_slice.stable1
                if smaller not in smaller_set:
                    return indexed.decode(smaller), indexed.decode(config)
    return None
