"""Exact verification: does a protocol compute its predicate?

For a fixed input ``v`` the reachable configuration space is finite
(agent count is conserved), and the fairness semantics of Section 2.2
admits an exact graph-theoretic characterisation:

    Every fair execution from ``IC(v)`` converges with output ``b``
    **iff** every bottom SCC of the reachability graph rooted at
    ``IC(v)`` consists solely of configurations with output ``b``.

(A fair execution eventually enters a bottom SCC and then visits each
of its configurations infinitely often; conversely any bottom SCC is
the settling set of some fair execution.)

:func:`verify_input` performs this check for one input;
:func:`verify_protocol` sweeps all inputs up to a size bound and either
confirms the protocol's predicate or produces a counterexample
(:class:`Counterexample`) naming the offending bottom SCC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import VerificationError
from ..core.multiset import Multiset
from ..core.predicates import Predicate
from ..core.protocol import PopulationProtocol
from ..reachability.graph import ReachabilityGraph

__all__ = ["verify_input", "verify_protocol", "Counterexample", "VerificationReport", "all_inputs"]


@dataclass(frozen=True)
class Counterexample:
    """Evidence that a protocol fails on some input.

    Attributes
    ----------
    inputs:
        The offending input multiset.
    expected:
        The predicate's truth value on the input (as 0/1).
    bottom_scc:
        One bottom SCC whose configurations do not form the expected
        consensus (decoded to multisets).
    reason:
        Human-readable diagnosis.
    """

    inputs: Multiset
    expected: int
    bottom_scc: Tuple[Multiset, ...]
    reason: str


@dataclass(frozen=True)
class VerificationReport:
    """Result of sweeping a protocol over a family of inputs."""

    protocol_name: str
    predicate: str
    inputs_checked: int
    largest_graph: int
    counterexample: Optional[Counterexample]

    @property
    def ok(self) -> bool:
        """True iff no counterexample was found."""
        return self.counterexample is None

    def raise_on_failure(self) -> "VerificationReport":
        """Return ``self`` on success; raise :class:`VerificationError` otherwise."""
        if self.counterexample is not None:
            raise VerificationError(
                f"{self.protocol_name} fails on input {self.counterexample.inputs.pretty()}: "
                f"{self.counterexample.reason}",
                input_value=self.counterexample.inputs,
                witness=self.counterexample,
            )
        return self


def verify_input(
    protocol: PopulationProtocol,
    inputs,
    expected: int,
    node_budget: int = 2_000_000,
) -> Optional[Counterexample]:
    """Check one input exactly; ``None`` means the input is handled correctly.

    ``expected`` is the predicate's value (0/1); the check is the
    bottom-SCC consensus criterion described in the module docstring.
    """
    indexed = protocol.indexed()
    initial = protocol.initial_configuration(inputs)
    graph = ReachabilityGraph.from_roots(protocol, [indexed.encode(initial)], node_budget=node_budget)
    for component in graph.bottom_sccs():
        for config in component:
            if indexed.output_of(config) != expected:
                inputs_ms = inputs if isinstance(inputs, Multiset) else _coerce_input(protocol, inputs)
                sample = tuple(indexed.decode(c) for c in component[:10])
                return Counterexample(
                    inputs=inputs_ms,
                    expected=expected,
                    bottom_scc=sample,
                    reason=(
                        f"bottom SCC of size {len(component)} contains {indexed.decode(config).pretty()} "
                        f"with output {indexed.output_of(config)} != expected {expected}"
                    ),
                )
    return None


def _coerce_input(protocol: PopulationProtocol, inputs) -> Multiset:
    if isinstance(inputs, int):
        (var,) = protocol.input_mapping
        return Multiset({var: inputs})
    if isinstance(inputs, Multiset):
        return inputs
    return Multiset(dict(inputs))


def all_inputs(variables: Tuple, max_size: int, min_size: int = 2) -> Iterator[Multiset]:
    """All input multisets over ``variables`` with ``min_size <= |v| <= max_size``."""
    for size in range(min_size, max_size + 1):
        for combo in itertools.combinations_with_replacement(variables, size):
            yield Multiset(combo)


def verify_protocol(
    protocol: PopulationProtocol,
    predicate: Predicate,
    max_input_size: int,
    min_input_size: int = 2,
    node_budget: int = 2_000_000,
) -> VerificationReport:
    """Exactly verify the protocol against ``predicate`` on all small inputs.

    Sweeps every input multiset of size ``min_input_size`` to
    ``max_input_size`` over the protocol's variables.  Stops at the
    first counterexample.

    Notes
    -----
    This is *exact* for each checked input but only a bounded sweep
    overall: population protocol correctness for all inputs is
    decidable yet (far) beyond exhaustive search; the paper's own
    constructions come with inductive proofs, and the sweep serves as
    machine-checked evidence on the small instances.
    """
    largest = 0
    checked = 0
    for inputs in all_inputs(protocol.variables, max_input_size, min_input_size):
        expected = 1 if predicate.evaluate(inputs) else 0
        counterexample = verify_input(protocol, inputs, expected, node_budget=node_budget)
        checked += 1
        if counterexample is not None:
            return VerificationReport(
                protocol_name=protocol.name,
                predicate=str(predicate),
                inputs_checked=checked,
                largest_graph=largest,
                counterexample=counterexample,
            )
    return VerificationReport(
        protocol_name=protocol.name,
        predicate=str(predicate),
        inputs_checked=checked,
        largest_graph=largest,
        counterexample=None,
    )
