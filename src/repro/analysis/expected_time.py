"""Exact expected convergence time via Markov-chain analysis.

Under the uniform random scheduler a population protocol on a fixed
input is a finite Markov chain over configurations: from ``C`` the
ordered agent pair ``(p, q)`` is drawn with probability
``C(p) (C(q) - [p = q]) / (|C| (|C| - 1))`` and the corresponding
transition fires (pairs without a non-silent transition loop on ``C``).

For small populations the *expected number of interactions until
stabilisation* — first entry into a configuration from which the
verdict can never change (a ``b``-stable configuration) — is the
solution of one linear system

    ``E[C] = 0``                                    for stable ``C``
    ``E[C] = 1 + sum_C' P(C -> C') E[C']``          otherwise,

solved here exactly with numpy.  This is the ground truth the
stochastic simulators are validated against, and the exact side of
experiment E9's parallel-time measurements.

Nondeterministic protocols resolve pair collisions uniformly over the
transitions sharing a precondition, matching the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.errors import ReproError, SearchBudgetExceeded
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from ..reachability.graph import ReachabilityGraph

__all__ = ["ExpectedTime", "expected_convergence_time", "transition_matrix"]

Config = Tuple[int, ...]


def _pair_outcomes(protocol: PopulationProtocol):
    """Map each unordered state pair to its possible post pairs."""
    outcomes: Dict[Tuple[object, object], List[Tuple[object, object]]] = {}
    for t in protocol.transitions:
        outcomes.setdefault((t.p, t.q), []).append((t.p2, t.q2))
    return outcomes


def transition_matrix(
    protocol: PopulationProtocol,
    graph: ReachabilityGraph,
    order: List[Config],
) -> np.ndarray:
    """The one-interaction stochastic matrix over ``order``'s configurations.

    Row ``i`` gives the distribution of the configuration after one
    uniformly random interaction from ``order[i]`` (self-loops included
    for silent pairs).
    """
    indexed = graph.indexed
    outcomes = _pair_outcomes(protocol)
    index_of = {config: i for i, config in enumerate(order)}
    size = len(order)
    matrix = np.zeros((size, size), dtype=np.float64)

    for row, config in enumerate(order):
        n = sum(config)
        total = n * (n - 1)
        if total == 0:
            raise ReproError("configurations need at least two agents")
        for i, p in enumerate(indexed.states):
            if config[i] == 0:
                continue
            for j, q in enumerate(indexed.states):
                count = config[j] - (1 if i == j else 0)
                if count <= 0:
                    continue
                weight = config[i] * count / total
                key = (p, q) if str(p) <= str(q) else (q, p)
                posts = outcomes.get(key)
                if not posts:
                    matrix[row, row] += weight  # implicit identity
                    continue
                share = weight / len(posts)
                for p2, q2 in posts:
                    successor = list(config)
                    successor[i] -= 1
                    successor[j] -= 1
                    successor[indexed.index[p2]] += 1
                    successor[indexed.index[q2]] += 1
                    matrix[row, index_of[tuple(successor)]] += share
    return matrix


@dataclass(frozen=True)
class ExpectedTime:
    """Result of :func:`expected_convergence_time`.

    ``interactions`` is the exact expected number of interactions from
    the initial configuration until a stable configuration is first
    entered; ``parallel_time`` divides by the population size.
    ``per_configuration`` exposes the full solution for inspection.
    """

    interactions: float
    population: int
    per_configuration: Mapping[Multiset, float]

    @property
    def parallel_time(self) -> float:
        """``interactions / population`` — the standard normalisation."""
        return self.interactions / self.population


def expected_convergence_time(
    protocol: PopulationProtocol,
    inputs: Union[int, Mapping, Multiset],
    node_budget: int = 20_000,
) -> ExpectedTime:
    """Exact expected interactions from ``IC(inputs)`` to stabilisation.

    Builds the reachability graph, identifies the stable configurations
    (absorbing set), and solves the hitting-time linear system.  Raises
    :class:`SearchBudgetExceeded` for graphs larger than
    ``node_budget`` (the system is dense: budget configurations mean a
    budget^2 float matrix) and :class:`ReproError` when some reachable
    configuration cannot reach the stable set at all (the protocol does
    not stabilise and the expectation is infinite).
    """
    indexed = protocol.indexed()
    initial = indexed.encode(protocol.initial_configuration(inputs))
    graph = ReachabilityGraph.from_roots(protocol, [initial], node_budget=node_budget)
    order = sorted(graph.nodes)
    if len(order) > node_budget:
        raise SearchBudgetExceeded(f"{len(order)} configurations exceed budget {node_budget}")

    # stable = cannot reach a configuration populating the complementary output
    bad_for: Dict[int, List[Config]] = {0: [], 1: []}
    for config in order:
        populated = {indexed.output[i] for i, c in enumerate(config) if c}
        if 1 in populated:
            bad_for[0].append(config)
        if 0 in populated:
            bad_for[1].append(config)
    unstable0 = graph.backward_closure(bad_for[0])
    unstable1 = graph.backward_closure(bad_for[1])
    stable = [c for c in order if c not in unstable0 or c not in unstable1]
    stable_set = set(stable)
    if not stable_set:
        raise ReproError("no stable configuration is reachable: expected time is infinite")

    # every transient configuration must reach the stable set
    can_stabilise = graph.backward_closure(stable)
    missing = [c for c in order if c not in can_stabilise]
    if missing:
        raise ReproError(
            f"{len(missing)} reachable configurations cannot stabilise "
            f"(e.g. {indexed.decode(missing[0]).pretty()}): expected time is infinite"
        )

    matrix = transition_matrix(protocol, graph, order)
    transient = [i for i, config in enumerate(order) if config not in stable_set]
    if not transient:
        solution = np.zeros(len(order))
    else:
        t_index = {i: k for k, i in enumerate(transient)}
        q = matrix[np.ix_(transient, transient)]
        system = np.eye(len(transient)) - q
        rhs = np.ones(len(transient))
        hitting = np.linalg.solve(system, rhs)
        solution = np.zeros(len(order))
        for i, k in t_index.items():
            solution[i] = hitting[k]

    per_config = {
        indexed.decode(config): float(solution[i]) for i, config in enumerate(order)
    }
    start = order.index(initial)
    return ExpectedTime(
        interactions=float(solution[start]),
        population=sum(initial),
        per_configuration=per_config,
    )
