"""Bases of the downward-closed stable sets (Lemma 3.2, empirically).

A *basis element* of a downward-closed set ``C`` is a pair ``(B, S)``
with ``B + N^S`` contained in ``C``; a *base* is a finite set of basis
elements covering ``C``.  Lemma 3.2 proves that ``SC_0``, ``SC_1`` and
``SC`` have bases of norm at most ``beta = 2^(2(2n+1)!+1)``.

``SC_b`` is an infinite set, so a computed base can only ever be
*verified up to a bound*; this module is explicit about that:

* :func:`check_basis_element` — verify ``B + v in SC_b`` for every
  ``v in N^S`` with ``|v| <= depth`` (exact stability check per point);
* :func:`infer_basis` — propose basis elements from the exact stable
  slices (cap each stable configuration at a threshold, collect the
  overflowing states into ``S``, exactly the shape used in the proof
  of Lemma 3.2) and keep those that pass :func:`check_basis_element`;
* :func:`covers` — check that a base covers the stable slices it was
  inferred from.

Experiment E3 compares the norms of inferred bases against the
astronomic ``beta(n)`` — protocols in practice have tiny bases, which
is the expected (and interesting) observation: the paper's constant is
a worst-case safety net, not a prediction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from .stable import StableSlice, is_stable, stable_slice

__all__ = ["BasisElement", "check_basis_element", "infer_basis", "covers"]

State = Hashable


@dataclass(frozen=True)
class BasisElement:
    """A candidate basis element ``(B, S)`` of ``SC_b``.

    ``verified_depth`` records how far the pumping directions were
    actually checked: every ``B + v`` with ``v in N^S``,
    ``|v| <= verified_depth`` was confirmed ``b``-stable.
    """

    B: Multiset
    S: FrozenSet[State]
    b: int
    verified_depth: int

    @property
    def norm(self) -> int:
        """``||(B, S)||_inf = ||B||_inf`` (the paper's norm of a basis element)."""
        return self.B.norm_inf()

    def contains(self, configuration: Multiset) -> bool:
        """Is ``configuration`` in ``B + N^S``?"""
        difference = configuration - self.B
        return difference.is_natural and difference.supported_on(self.S)

    def __str__(self) -> str:
        return f"(B={self.B.pretty()}, S={{{', '.join(map(str, sorted(self.S, key=str)))}}}, b={self.b})"


def _pump_vectors(states: Sequence[State], depth: int) -> Iterable[Multiset]:
    """All ``v in N^S`` with ``|v| <= depth`` (including zero)."""
    for total in range(depth + 1):
        for combo in itertools.combinations_with_replacement(states, total):
            yield Multiset(combo)


def prove_basis_element(
    protocol: PopulationProtocol,
    B: Multiset,
    S: Iterable[State],
    b: int,
    node_budget: int = 200_000,
) -> bool:
    """*Prove* ``B + N^S`` is contained in ``SC_b`` — exactly.

    ``B + N^S`` lies in ``SC_b`` iff no configuration populating a
    state of output ``1 - b`` is reachable from any ``B + v``; that is
    a coverability question for the family, answered exactly by a
    Karp-Miller tree rooted at ``B`` with omega on the ``S``
    coordinates.  Unlike :func:`check_basis_element` this is not a
    bounded approximation: a ``True`` here is a proof (used by the
    certificate checker, where bounded pumping checks are unsound —
    a deep-enough pump may cross the threshold only beyond any fixed
    depth).
    """
    from ..reachability.coverability import OMEGA, karp_miller

    indexed = protocol.indexed()
    S = set(S)
    root = tuple(
        OMEGA if state in S else B[state] for state in indexed.states
    )
    tree = karp_miller(protocol, [root], node_budget=node_budget)
    for i, state in enumerate(indexed.states):
        if protocol.output[state] != b:
            target = tuple(1 if j == i else 0 for j in range(indexed.n))
            if tree.covers(target):
                return False
    return True


def check_basis_element(
    protocol: PopulationProtocol,
    B: Multiset,
    S: Iterable[State],
    b: int,
    depth: int,
    node_budget: int = 2_000_000,
) -> bool:
    """Verify ``B + v in SC_b`` for all ``v in N^S`` with ``|v| <= depth``.

    Exact per point (each point's forward closure is explored); the
    overall claim ``B + N^S subseteq SC_b`` is checked only up to
    ``depth`` — callers must treat a ``True`` as bounded evidence, not
    proof.  Points of size < 2 (not configurations) are skipped.
    """
    S = sorted(set(S), key=str)
    for v in _pump_vectors(S, depth):
        candidate = B + v
        if candidate.size < 2:
            continue
        if not is_stable(protocol, candidate, b, node_budget=node_budget):
            return False
    return True


def infer_basis(
    protocol: PopulationProtocol,
    b: int,
    slice_sizes: Sequence[int],
    cap: int = 1,
    pump_depth: int = 3,
    node_budget: int = 2_000_000,
) -> List[BasisElement]:
    """Infer a base of ``SC_b`` from exact stable slices.

    For every ``b``-stable configuration ``C`` in the given slices and
    every subset ``S`` of its support, form the Lemma 3.2-shaped
    candidate ``B = C`` capped at ``cap`` on ``S`` (kept exact outside
    ``S``).  The proof uses a single gigantic cap (``2 * beta``) and
    the overflowing states as ``S``; with realistic caps the pumpable
    direction set must be *searched*, which the subset enumeration does
    (supports are tiny, so this is cheap).  Candidates failing the
    bounded pumping check are discarded; survivors subsumed by another
    element are pruned.

    The trivial candidate ``(C, {})`` is always present, so the result
    covers every inspected slice; the pumpable elements provide the
    generalisation to larger sizes (checked by :func:`covers`).
    """
    candidates: Dict[Tuple[Multiset, FrozenSet[State]], None] = {}
    for size in slice_sizes:
        sl = stable_slice(protocol, size, node_budget=node_budget)
        for config in sl.stable_multisets(b):
            support = sorted(config.support(), key=str)
            for r in range(len(support) + 1):
                for subset in itertools.combinations(support, r):
                    S = frozenset(subset)
                    B = Multiset(
                        {q: min(c, cap) if q in S else c for q, c in config.items()}
                    )
                    candidates.setdefault((B, S))

    verified: List[BasisElement] = []
    for B, S in candidates:
        if check_basis_element(protocol, B, S, b, pump_depth, node_budget=node_budget):
            verified.append(BasisElement(B=B, S=S, b=b, verified_depth=pump_depth))

    # Prune subsumed elements: (B, S) is subsumed by (B', S') when
    # B + N^S is contained in B' + N^S', i.e. S <= S' and B - B' in N^S'.
    def subsumes(big: BasisElement, small: BasisElement) -> bool:
        difference = small.B - big.B
        return small.S <= big.S and difference.is_natural and difference.supported_on(big.S)

    pruned: List[BasisElement] = []
    for index, element in enumerate(verified):
        subsumed = any(
            subsumes(other, element)
            and not (subsumes(element, other) and index < other_index)
            for other_index, other in enumerate(verified)
            if other_index != index
        )
        if not subsumed:
            pruned.append(element)
    return pruned


def covers(
    basis: Sequence[BasisElement],
    protocol: PopulationProtocol,
    b: int,
    slice_sizes: Sequence[int],
    node_budget: int = 2_000_000,
) -> Optional[Multiset]:
    """First ``b``-stable configuration not covered by the base, if any.

    ``None`` means the base covers every ``b``-stable configuration of
    the given sizes.
    """
    for size in slice_sizes:
        sl = stable_slice(protocol, size, node_budget=node_budget)
        for config in sl.stable_multisets(b):
            if not any(element.contains(config) for element in basis):
                return config
    return None
