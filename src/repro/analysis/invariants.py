"""Linear invariants: conserved quantities of a protocol.

A *linear invariant* is a weight function ``w : Q -> Q`` (rationals)
with ``w . Delta_t = 0`` for every transition ``t`` — the weighted agent
count ``sum_q w(q) C(q)`` is then constant along every execution.
Invariants are the work-horses of protocol correctness proofs: the
binary threshold family conserves the total *encoded value*, every
protocol conserves the population (the all-ones invariant), and the
paper's pseudo-reachability arguments (Definition 4) are feasibility
questions relative to the displacement lattice these invariants
annihilate.

This module computes, exactly over the rationals:

* :func:`invariant_basis` — a basis of the left kernel of the
  displacement matrix (all linear invariants, dimension included);
* :func:`conserved_value` — evaluate an invariant on a configuration;
* :func:`is_invariant` — check a proposed weight vector;
* :func:`explains_conservation` — given source/target configurations,
  report the invariants separating them (a *proof* of unreachability
  whenever one exists).

Everything is fraction-exact (no floating point): Gaussian elimination
over :class:`fractions.Fraction`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from ..linalg import normalise_integer_vector, rational_null_space

__all__ = [
    "invariant_basis",
    "is_invariant",
    "conserved_value",
    "explains_conservation",
]

State = Hashable
Weights = Dict[State, Fraction]


def invariant_basis(protocol: PopulationProtocol) -> List[Weights]:
    """A basis of all linear invariants of the protocol.

    The all-ones vector (population conservation) is always in the
    spanned space, since every transition moves exactly two agents to
    exactly two agents.  Returned weight vectors are normalised to
    coprime integers with positive leading entry.
    """
    states = protocol.states
    rows = [
        [Fraction(t.displacement[q]) for q in states]
        for t in protocol.transitions
        if not t.is_silent
    ]
    if not rows:
        rows = [[Fraction(0)] * len(states)]
    kernel = rational_null_space(rows, len(states))
    return [
        {q: w for q, w in zip(states, normalise_integer_vector(vector))}
        for vector in kernel
    ]


def is_invariant(protocol: PopulationProtocol, weights: Mapping[State, object]) -> bool:
    """Does ``w . Delta_t = 0`` hold for every transition?"""
    w = {q: Fraction(weights.get(q, 0)) for q in protocol.states}
    for t in protocol.transitions:
        total = sum(w[q] * t.displacement[q] for q in t.states())
        if total != 0:
            return False
    return True


def conserved_value(weights: Mapping[State, object], configuration: Multiset) -> Fraction:
    """``sum_q w(q) * C(q)`` — constant along every execution."""
    return sum(
        (Fraction(weights.get(q, 0)) * count for q, count in configuration.items()),
        Fraction(0),
    )


def explains_conservation(
    protocol: PopulationProtocol,
    source: Multiset,
    target: Multiset,
) -> Optional[Weights]:
    """An invariant separating ``source`` from ``target``, if one exists.

    If the returned weights ``w`` satisfy
    ``w . source != w . target`` then ``target`` is *provably*
    unreachable from ``source`` (the invariant is conserved by every
    step).  ``None`` means no *linear* obstruction exists — the target
    may still be unreachable for other reasons.
    """
    for weights in invariant_basis(protocol):
        if conserved_value(weights, source) != conserved_value(weights, target):
            return weights
    return None
