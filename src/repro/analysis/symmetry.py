"""Protocol isomorphism: canonical forms and symmetry detection.

Two protocols differing only in state names compute the same
predicates with the same dynamics; treating them as distinct wastes
effort everywhere a space of protocols is explored (the busy-beaver
enumeration of :mod:`repro.bounds.enumeration` being the prime
consumer: at ``n = 2`` already ~40% of the raw enumeration is
redundant).

* :func:`are_isomorphic` — is there a state bijection carrying one
  protocol onto the other (respecting transitions, leaders, inputs and
  outputs)?
* :func:`canonical_key` — a hashable value equal for exactly the
  isomorphic protocols (brute force over output-respecting state
  permutations; intended for small ``n``);
* :func:`automorphisms` — the protocol's own symmetries, as state
  permutations.

Symmetries also matter semantically: an automorphism maps fair
executions to fair executions, so symmetric states are behaviourally
interchangeable — a cheap precursor to the verification-backed merging
of :mod:`repro.analysis.minimisation`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from ..core.protocol import PopulationProtocol, Transition

__all__ = ["are_isomorphic", "canonical_key", "automorphisms"]

State = Hashable


def _signature(protocol: PopulationProtocol, order: Tuple[State, ...]):
    """The protocol's full structure relative to a state ordering."""
    index = {state: i for i, state in enumerate(order)}
    transitions = frozenset(
        (
            tuple(sorted((index[t.p], index[t.q]))),
            tuple(sorted((index[t.p2], index[t.q2]))),
        )
        for t in protocol.transitions
    )
    outputs = tuple(protocol.output[state] for state in order)
    leaders = tuple(protocol.leaders[state] for state in order)
    inputs = tuple(sorted((str(v), index[s]) for v, s in protocol.input_mapping.items()))
    return (outputs, leaders, inputs, transitions)


def _candidate_orders(protocol: PopulationProtocol) -> Iterator[Tuple[State, ...]]:
    """All state orderings (brute force; guard the state count)."""
    if protocol.num_states > 8:
        raise ValueError(
            f"canonicalisation is brute-force over permutations; "
            f"{protocol.num_states} states is too many (max 8)"
        )
    yield from itertools.permutations(protocol.states)


def canonical_key(protocol: PopulationProtocol):
    """A hashable canonical form: equal iff protocols are isomorphic.

    The minimum of the structural signature over all state orderings.
    Input variable *names* are part of the structure (two protocols
    over different variables are not identified).
    """
    return min(_signature(protocol, order) for order in _candidate_orders(protocol))


def are_isomorphic(left: PopulationProtocol, right: PopulationProtocol) -> bool:
    """Is there a state bijection carrying ``left`` onto ``right``?"""
    if left.num_states != right.num_states:
        return False
    if left.num_transitions != right.num_transitions:
        return False
    if sorted(left.output.values()) != sorted(right.output.values()):
        return False
    return canonical_key(left) == canonical_key(right)


def automorphisms(protocol: PopulationProtocol) -> List[Dict[State, State]]:
    """All state permutations mapping the protocol onto itself.

    The identity is always included; a non-trivial automorphism
    certifies behaviourally interchangeable states.
    """
    base = _signature(protocol, protocol.states)
    result = []
    for order in _candidate_orders(protocol):
        # order describes the permutation sending protocol.states[i] -> order[i]?
        # We test: relabelling by mapping order -> positions reproduces base.
        if _signature(protocol, order) == base:
            mapping = {original: renamed for original, renamed in zip(order, protocol.states)}
            result.append(mapping)
    return result
