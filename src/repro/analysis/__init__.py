"""Exact analyses: verification, stable sets, bases, saturation, concentration."""

from .basis import BasisElement, check_basis_element, covers, infer_basis, prove_basis_element
from .concentration import ConcentrationWitness, best_concentration, reachable_stable_configurations
from .expected_time import ExpectedTime, expected_convergence_time, transition_matrix
from .minimisation import greedy_minimise, merge_states
from .symmetry import are_isomorphic, automorphisms, canonical_key
from .invariants import (
    conserved_value,
    explains_conservation,
    invariant_basis,
    is_invariant,
)
from .termination import (
    ConvergenceClass,
    InputClassification,
    classify_input,
    is_silent_protocol,
)
from .saturation import SaturationResult, TripledSequence, expanding_transition, saturation_sequence
from .stable import StableSlice, check_downward_closure, is_stable, stability_of, stable_slice
from .verification import Counterexample, VerificationReport, all_inputs, verify_input, verify_protocol

__all__ = [
    "verify_input",
    "verify_protocol",
    "Counterexample",
    "VerificationReport",
    "all_inputs",
    "is_stable",
    "stability_of",
    "stable_slice",
    "StableSlice",
    "check_downward_closure",
    "BasisElement",
    "check_basis_element",
    "prove_basis_element",
    "infer_basis",
    "covers",
    "ExpectedTime",
    "expected_convergence_time",
    "transition_matrix",
    "invariant_basis",
    "is_invariant",
    "conserved_value",
    "explains_conservation",
    "ConvergenceClass",
    "InputClassification",
    "classify_input",
    "is_silent_protocol",
    "merge_states",
    "greedy_minimise",
    "are_isomorphic",
    "canonical_key",
    "automorphisms",
    "saturation_sequence",
    "SaturationResult",
    "TripledSequence",
    "expanding_transition",
    "reachable_stable_configurations",
    "best_concentration",
    "ConcentrationWitness",
]
