"""Reaching concentrated stable configurations (Lemma 5.5, empirically).

Lemma 5.5: from ``IC(k * n * beta)`` one can reach a stable
configuration ``B + D_a`` that is ``1/k``-concentrated in ``S``, for a
*small* basis element ``(B, S)`` — because ``|B| <= n * beta`` is a
vanishing fraction of the population.

The paper's ``beta`` is astronomically large, but the phenomenon it
protects against is tiny in practice: real protocols have stable bases
of single-digit norm, so concentration kicks in already for moderate
inputs.  This module computes, exactly:

* :func:`reachable_stable_configurations` — every stable configuration
  reachable from ``IC(a)`` (bottom-up through one reachability graph);
* :func:`best_concentration` — the reachable stable configuration that
  is most concentrated in the pumpable set ``S`` of a given basis,
  together with the achieved ``epsilon`` — the empirical Lemma 5.5.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol
from ..reachability.graph import ReachabilityGraph
from .basis import BasisElement

__all__ = ["reachable_stable_configurations", "best_concentration", "ConcentrationWitness"]


def reachable_stable_configurations(
    protocol: PopulationProtocol,
    inputs,
    node_budget: int = 2_000_000,
) -> List[Tuple[Multiset, int]]:
    """All stable configurations reachable from ``IC(inputs)``, with verdicts.

    A reachable configuration is ``b``-stable iff it cannot reach (in
    the forward-closed graph) any configuration populating a state of
    output ``1 - b``; both backward closures are computed once, so the
    whole answer costs two sweeps of the graph.
    """
    indexed = protocol.indexed()
    initial = indexed.encode(protocol.initial_configuration(inputs))
    graph = ReachabilityGraph.from_roots(protocol, [initial], node_budget=node_budget)

    bad_for: Dict[int, List[Tuple[int, ...]]] = {0: [], 1: []}
    for config in graph.nodes:
        outputs = {indexed.output[i] for i, c in enumerate(config) if c}
        if 1 in outputs:
            bad_for[0].append(config)
        if 0 in outputs:
            bad_for[1].append(config)
    unstable0 = graph.backward_closure(bad_for[0])
    unstable1 = graph.backward_closure(bad_for[1])

    result: List[Tuple[Multiset, int]] = []
    for config in sorted(graph.nodes):
        if config not in unstable0:
            result.append((indexed.decode(config), 0))
        elif config not in unstable1:
            result.append((indexed.decode(config), 1))
    return result


class ConcentrationWitness:
    """A reachable stable configuration matched to a basis element.

    ``epsilon`` is the exact fraction of agents outside the element's
    pumpable set ``S``; Lemma 5.5 predicts ``epsilon <= |B| / a``.
    """

    def __init__(self, configuration: Multiset, element: BasisElement, epsilon: Fraction):
        self.configuration = configuration
        self.element = element
        self.epsilon = epsilon
        self.D_a = configuration - element.B

    def __repr__(self) -> str:
        return (
            f"ConcentrationWitness(C={self.configuration.pretty()}, "
            f"element={self.element}, epsilon={self.epsilon})"
        )


def best_concentration(
    protocol: PopulationProtocol,
    inputs,
    basis: Sequence[BasisElement],
    node_budget: int = 2_000_000,
) -> Optional[ConcentrationWitness]:
    """The most concentrated reachable stable configuration (Lemma 5.5).

    Scans every stable configuration reachable from ``IC(inputs)``,
    matches it against the basis, and returns the witness with the
    smallest ``epsilon`` (ties broken towards larger ``|D_a|``).
    Returns ``None`` when no reachable stable configuration lies in any
    basis element — a sign the basis is incomplete for this input size.
    """
    best: Optional[ConcentrationWitness] = None
    for configuration, verdict in reachable_stable_configurations(
        protocol, inputs, node_budget=node_budget
    ):
        total = configuration.size
        if total == 0:
            continue
        for element in basis:
            if element.b != verdict or not element.contains(configuration):
                continue
            outside = total - configuration.count(element.S)
            epsilon = Fraction(outside, total)
            witness = ConcentrationWitness(configuration, element, epsilon)
            if best is None or epsilon < best.epsilon:
                best = witness
    return best
