"""Termination shapes: silent protocols, livelocks, convergence classes.

Population protocols stabilise in qualitatively different ways, and
the distinction matters for both theory and simulation:

* **silent** runs end in a configuration enabling no effective
  transition (all our threshold constructions); silence is detectable
  locally and makes simulation stopping rules exact;
* **live consensus**: the verdict stabilises but agents keep moving
  inside a bottom SCC (the 4-state majority's follower tug-of-war on
  some inputs);
* **livelock / no consensus**: a bottom SCC without uniform output —
  the protocol computes nothing on that input.

:func:`classify_input` decides which case holds for one input,
exactly; :func:`is_silent_protocol` sweeps inputs.  The classification
refines what :func:`repro.analysis.verification.verify_input` reports
(correct/incorrect) with *how* the protocol converges.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..core.protocol import PopulationProtocol
from ..reachability.graph import ReachabilityGraph

__all__ = ["ConvergenceClass", "InputClassification", "classify_input", "is_silent_protocol"]


class ConvergenceClass(Enum):
    """How fair executions from one input settle."""

    SILENT = "silent"                  # all bottom SCCs are terminal singletons
    LIVE_CONSENSUS = "live-consensus"  # bottom SCCs are consensus but keep moving
    NO_CONSENSUS = "no-consensus"      # some bottom SCC has mixed outputs


@dataclass(frozen=True)
class InputClassification:
    """Exact convergence classification of one input."""

    convergence: ConvergenceClass
    verdicts: Tuple[int, ...]
    bottom_scc_count: int
    largest_bottom_scc: int

    @property
    def verdict(self) -> Optional[int]:
        """The common verdict, or ``None`` if bottom SCCs disagree."""
        unique = set(self.verdicts)
        if len(unique) == 1:
            return next(iter(unique))
        return None


def classify_input(
    protocol: PopulationProtocol,
    inputs,
    node_budget: int = 2_000_000,
) -> InputClassification:
    """Classify how the protocol converges on one input, exactly."""
    indexed = protocol.indexed()
    root = indexed.encode(protocol.initial_configuration(inputs))
    graph = ReachabilityGraph.from_roots(protocol, [root], node_budget=node_budget)
    bottoms = graph.bottom_sccs()

    verdicts: List[int] = []
    all_silent = True
    mixed = False
    largest = 0
    for component in bottoms:
        largest = max(largest, len(component))
        if len(component) > 1 or graph.successors_of(component[0]):
            all_silent = False
        outputs = {indexed.output_of(config) for config in component}
        if None in outputs or len(outputs) > 1:
            mixed = True
        else:
            verdicts.append(next(iter(outputs)))

    if mixed:
        convergence = ConvergenceClass.NO_CONSENSUS
    elif all_silent:
        convergence = ConvergenceClass.SILENT
    else:
        convergence = ConvergenceClass.LIVE_CONSENSUS
    return InputClassification(
        convergence=convergence,
        verdicts=tuple(verdicts),
        bottom_scc_count=len(bottoms),
        largest_bottom_scc=largest,
    )


def is_silent_protocol(
    protocol: PopulationProtocol,
    max_input_size: int,
    min_input_size: int = 2,
    node_budget: int = 2_000_000,
) -> bool:
    """Does every checked input converge silently?

    Silent protocols admit exact local stopping rules in simulation
    (what :class:`repro.simulation.scheduler.CountScheduler` uses) —
    a ``False`` here warns that silent-consensus detection may not
    terminate even though the protocol stabilises.
    """
    from .verification import all_inputs

    for inputs in all_inputs(protocol.variables, max_input_size, min_input_size):
        result = classify_input(protocol, inputs, node_budget=node_budget)
        if result.convergence is not ConvergenceClass.SILENT:
            return False
    return True
