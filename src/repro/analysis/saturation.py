"""Reaching saturated configurations (Lemmas 5.3 and 5.4).

A configuration is *j-saturated* when every state holds at least ``j``
agents.  Lemma 5.4 proves constructively that a leaderless protocol
with ``n`` states and every state coverable can reach a 1-saturated
configuration from ``IC(3^n)`` with a firing sequence of length at
most ``3^n`` — and the proof is an algorithm, implemented here:

1. start from ``C_0 = IC(1)`` (a single input agent) with the empty
   sequence;
2. while the support of ``C_k`` is not all of ``Q``: find a transition
   ``t = p, q -> p', q'`` with ``p, q`` inside the support and
   ``p'`` or ``q'`` outside (Lemma 5.3 guarantees one exists when all
   states are coverable); triple the configuration and fire ``t``
   once: ``C_(k+1) = 3 C_k + Delta_t``, ``sigma_(k+1) = sigma_k^3 t``;
3. when ``C_k`` is saturated, stop.

The sequence triples at every step, so it is kept *symbolically* as a
:class:`TripledSequence`; its length ``(3^j - 1)/2`` is available in
closed form and it can be materialised (budget permitting) to actually
fire it — which the tests do, validating the construction end to end.

Because the support strictly grows in every non-saturated step, at
most ``n`` steps happen, giving input size and length at most ``3^n``:
exactly the bound used in Theorem 5.9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple

from ..cache.decorator import cached_analysis
from ..cache.fingerprint import state_name_map
from ..core.errors import ProtocolError, SearchBudgetExceeded
from ..core.multiset import Multiset
from ..core.protocol import PopulationProtocol, Transition
from ..core.semantics import fire_sequence
from ..obs import get_tracer, progress
from ..reachability.pseudo import input_state

__all__ = ["TripledSequence", "SaturationResult", "expanding_transition", "saturation_sequence"]

State = Hashable


@dataclass(frozen=True)
class TripledSequence:
    """The symbolic sequence ``sigma_j`` of Lemma 5.4.

    Represents ``sigma_(k+1) = sigma_k^3 t_k`` for the recorded list of
    expanding transitions ``t_0 .. t_(j-1)`` (steps where the
    configuration was merely tripled contribute no transition and are
    represented by ``None``).
    """

    steps: Tuple[Optional[Transition], ...]

    @property
    def length(self) -> int:
        """``|sigma_j|`` in closed form: ``sum 3^(j-1-i) * [t_i fired]``."""
        total = 0
        for transition in self.steps:
            total = 3 * total + (1 if transition is not None else 0)
        return total

    def materialise(self, budget: int = 1_000_000) -> List[Transition]:
        """The explicit transition sequence; raises when longer than ``budget``."""
        if self.length > budget:
            raise SearchBudgetExceeded(
                f"saturation sequence has length {self.length}, budget {budget}"
            )
        sequence: List[Transition] = []
        for transition in self.steps:
            sequence = sequence * 3
            if transition is not None:
                sequence.append(transition)
        return sequence


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of the Lemma 5.4 construction.

    Attributes
    ----------
    input_size:
        ``3^j``: the input whose initial configuration fires the sequence.
    sequence:
        The symbolic firing sequence (length ``(3^j - 1)/2`` at most).
    configuration:
        The 1-saturated configuration reached.
    rounds:
        ``j``: number of construction rounds (at most ``n``).
    """

    input_size: int
    sequence: TripledSequence
    configuration: Multiset
    rounds: int

    def saturation_level(self) -> int:
        """The largest ``j`` such that the final configuration is ``j``-saturated."""
        return min(self.configuration.values())

    def verify(self, protocol: PopulationProtocol, budget: int = 1_000_000) -> bool:
        """Fire the materialised sequence from ``IC(input_size)`` and check.

        Returns ``True`` when the fired execution ends exactly in the
        claimed configuration and that configuration is 1-saturated.
        """
        initial = protocol.initial_configuration(self.input_size)
        final = fire_sequence(initial, self.sequence.materialise(budget))
        return final == self.configuration and all(
            final[q] >= 1 for q in protocol.coverable_states()
        )


def expanding_transition(
    protocol: PopulationProtocol,
    support: Set[State],
) -> Optional[Transition]:
    """A transition from inside ``support`` producing a state outside it.

    This is the transition whose existence Lemma 5.3 proves whenever
    ``x in support`` is a proper subset of the coverable states.
    Returns ``None`` when no such transition exists (then no state
    outside ``support`` is coverable from within).
    """
    for transition in protocol.transitions:
        if transition.p in support and transition.q in support:
            if transition.p2 not in support or transition.q2 not in support:
                return transition
    return None


def _sat_params(arguments):
    return {}


def _sat_encode(result: SaturationResult, protocol: PopulationProtocol):
    return {
        "input_size": result.input_size,
        "rounds": result.rounds,
        "steps": [
            None if t is None else [str(t.p), str(t.q), str(t.p2), str(t.q2)]
            for t in result.sequence.steps
        ],
        "configuration": {str(q): c for q, c in result.configuration.items()},
    }


def _sat_decode(payload, protocol: PopulationProtocol) -> SaturationResult:
    # The result references states of the coverable restriction, which
    # is a subset of the original protocol's states.
    names = state_name_map(protocol)
    steps = tuple(
        None
        if item is None
        else Transition(names[item[0]], names[item[1]], names[item[2]], names[item[3]])
        for item in payload["steps"]
    )
    configuration = Multiset(
        {names[q]: int(c) for q, c in payload["configuration"].items()}
    )
    return SaturationResult(
        input_size=int(payload["input_size"]),
        sequence=TripledSequence(steps),
        configuration=configuration,
        rounds=int(payload["rounds"]),
    )


@cached_analysis(
    "saturation.sequence",
    params=_sat_params,
    encode=_sat_encode,
    decode=_sat_decode,
)
def saturation_sequence(protocol: PopulationProtocol) -> SaturationResult:
    """Run the constructive proof of Lemma 5.4.

    Requirements: the protocol must be leaderless with a single input
    variable.  Uncoverable states are dropped first (the paper's
    "wlog every state is coverable"; see
    :meth:`PopulationProtocol.restricted_to_coverable`) — the returned
    configuration saturates the *coverable* state set.  If the
    restriction itself leaves states that the expanding-transition scan
    cannot reach (impossible by construction), a
    :class:`ProtocolError` is raised.
    """
    if not protocol.is_leaderless:
        raise ProtocolError("Lemma 5.4 applies to leaderless protocols only")
    protocol = protocol.restricted_to_coverable()
    x = input_state(protocol)

    configuration = Multiset.singleton(x)  # C_0 = IC(1), |C_0| = 1 (proof-internal)
    steps: List[Optional[Transition]] = []
    rounds = 0
    all_states = set(protocol.states)

    with get_tracer().span(
        "saturation.sequence", states=protocol.num_states, protocol=protocol.name
    ) as span:
        meter = progress(
            "saturation",
            lambda: {"support": len(configuration.support()), "states": len(all_states)},
        )
        while configuration.support() != all_states:
            meter.tick()
            transition = expanding_transition(protocol, configuration.support())
            if transition is None:
                unreachable = all_states - configuration.support()
                raise ProtocolError(
                    f"states {sorted(map(str, unreachable))} are not coverable from the input; "
                    "Lemma 5.4's standing assumption fails for this protocol"
                )
            tripled = 3 * configuration
            if not transition.enabled_in(tripled):
                # Cannot happen: p, q lie in the support, so 3*C has >= 3
                # agents in p and q (>= 3 in p alone when p = q).
                raise ProtocolError(f"internal error: {transition} not enabled in tripled configuration")
            configuration = tripled + transition.displacement
            steps.append(transition)
            rounds += 1
            if rounds > protocol.num_states:
                raise ProtocolError(
                    "saturation did not stabilise within n rounds; support failed to grow"
                )

        while configuration.size < 2:
            # IC(i) needs at least two agents; a plain tripling round keeps
            # the invariant IC(3^j) --sigma--> C_j without firing anything.
            configuration = 3 * configuration
            steps.append(None)
            rounds += 1
        meter.finish()
        span.add("rounds", rounds)
        span.set(input_size=3**rounds)

    return SaturationResult(
        input_size=3**rounds,
        sequence=TripledSequence(tuple(steps)),
        configuration=configuration,
        rounds=rounds,
    )
