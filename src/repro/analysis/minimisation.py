"""Verification-backed state minimisation: empirical STATE(phi) upper bounds.

``STATE(phi)`` asks for the *smallest* protocol computing ``phi``; the
constructions give upper bounds, and any state-merging that preserves
the computed predicate tightens them.  Sound automatic minimisation of
population protocols is subtle (merging states changes the whole
configuration space, and bisimulation-style arguments do not transfer
directly from automata), so this module takes the honest route:

* :func:`merge_states` — the syntactic merge (rename ``drop`` to
  ``keep`` everywhere, deduplicate transitions; nondeterminism may
  appear and is allowed);
* :func:`greedy_minimise` — propose merges pair by pair, *keep a merge
  only if the merged protocol still verifies exactly* against the
  predicate on all inputs up to the bound.  The result is a protocol
  that provably (up to the bound) computes the same predicate with at
  most as many states.

The output is bounded evidence, not proof — exactly like any empirical
STATE(phi) upper bound.  On the shipped constructions the minimiser
finds genuine reductions in compiled product protocols (where the
product construction wastes states) and none in the hand-optimised
families, which is reassuring in both directions.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from ..core.predicates import Predicate
from ..core.protocol import PopulationProtocol, Transition
from .verification import verify_protocol

__all__ = ["merge_states", "greedy_minimise"]


def merge_states(protocol: PopulationProtocol, keep, drop) -> PopulationProtocol:
    """The protocol with ``drop`` renamed to ``keep`` everywhere.

    Outputs must agree (merging states with different outputs cannot
    preserve any predicate); leaders, inputs and transitions are
    rewritten, duplicate transitions collapse.
    """
    if keep == drop:
        raise ValueError("cannot merge a state with itself")
    if protocol.output[keep] != protocol.output[drop]:
        raise ValueError(
            f"cannot merge states with different outputs: "
            f"O({keep!r}) = {protocol.output[keep]}, O({drop!r}) = {protocol.output[drop]}"
        )

    def rename(state):
        return keep if state == drop else state

    from ..core.multiset import Multiset

    return PopulationProtocol(
        states=tuple(s for s in protocol.states if s != drop),
        transitions=tuple(
            Transition(rename(t.p), rename(t.q), rename(t.p2), rename(t.q2))
            for t in protocol.transitions
        ),
        leaders=Multiset({rename(s): c for s, c in protocol.leaders.items()}),
        input_mapping={v: rename(s) for v, s in protocol.input_mapping.items()},
        output={s: b for s, b in protocol.output.items() if s != drop},
        name=f"{protocol.name} [merged {drop}->{keep}]",
    )


def greedy_minimise(
    protocol: PopulationProtocol,
    predicate: Predicate,
    max_input_size: int,
    node_budget: int = 2_000_000,
) -> Tuple[PopulationProtocol, int]:
    """Greedily merge state pairs while exact verification still passes.

    Returns ``(minimised protocol, number of merges applied)``.  Every
    intermediate candidate is verified on *all* inputs up to
    ``max_input_size`` — a rejected merge costs one verification sweep,
    so the procedure is quadratic in states times the sweep cost; use
    it on small protocols (compiled products, enumeration winners).
    """
    baseline = verify_protocol(
        protocol, predicate, max_input_size=max_input_size, node_budget=node_budget
    )
    if not baseline.ok:
        raise ValueError(
            f"protocol does not compute {predicate} on the checked inputs; "
            "refusing to 'minimise' an incorrect protocol"
        )

    current = protocol
    merges = 0
    progress = True
    while progress:
        progress = False
        for keep, drop in itertools.combinations(current.states, 2):
            if current.output[keep] != current.output[drop]:
                continue
            candidate = merge_states(current, keep, drop)
            report = verify_protocol(
                candidate, predicate, max_input_size=max_input_size, node_budget=node_budget
            )
            if report.ok:
                current = candidate
                merges += 1
                progress = True
                break
    return current, merges
