"""Hypothesis strategies for property-based testing of protocol code.

Downstream users building on this library can property-test their own
analyses with the same generators our suite uses::

    from hypothesis import given
    from repro.testing import protocols, configurations

    @given(protocols(), configurations())
    def test_my_analysis(protocol, config):
        ...

All strategies are importable without hypothesis installed only if
never called (the import is deferred).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .core.multiset import Multiset
from .core.protocol import PopulationProtocol, Transition

__all__ = [
    "protocols",
    "configurations",
    "inputs_for",
    "partitions",
    "renamings",
    "count_matrices",
    "instrumentation_snapshots",
]

_DEFAULT_STATES: Tuple[str, ...] = ("s0", "s1", "s2", "s3")


def protocols(max_states: int = 3, states: Sequence[str] = _DEFAULT_STATES):
    """A strategy generating complete deterministic random protocols.

    Single input variable ``x``; between 2 and ``max_states`` states.
    """
    import hypothesis.strategies as st

    if not 2 <= max_states <= len(states):
        raise ValueError(f"max_states must be in [2, {len(states)}]")

    @st.composite
    def build(draw):
        n = draw(st.integers(2, max_states))
        chosen = tuple(states[:n])
        pairs = [(chosen[i], chosen[j]) for i in range(n) for j in range(i, n)]
        transitions = []
        for p, q in pairs:
            p2 = draw(st.sampled_from(chosen))
            q2 = draw(st.sampled_from(chosen))
            transitions.append(Transition(p, q, p2, q2))
        outputs = {s: draw(st.integers(0, 1)) for s in chosen}
        input_state = draw(st.sampled_from(chosen))
        return PopulationProtocol(
            states=chosen,
            transitions=tuple(transitions),
            leaders=Multiset(),
            input_mapping={"x": input_state},
            output=outputs,
            name="random",
        )

    return build()


def configurations(states: Sequence[str] = _DEFAULT_STATES, max_size: int = 8):
    """A strategy generating configurations (natural, size >= 2)."""
    import hypothesis.strategies as st

    return (
        st.dictionaries(st.sampled_from(list(states)), st.integers(0, max_size), min_size=1)
        .map(Multiset)
        .filter(lambda m: m.size >= 2)
    )


def inputs_for(protocol: PopulationProtocol, max_size: int = 8):
    """A strategy generating valid inputs for a given protocol."""
    import hypothesis.strategies as st

    variables = list(protocol.input_mapping)
    minimum = max(0, 2 - protocol.leaders.size)
    return (
        st.dictionaries(st.sampled_from(variables), st.integers(0, max_size))
        .map(Multiset)
        .filter(lambda m: m.size >= minimum and m.size >= 1)
    )


def partitions(total: int, max_chunk: int = None):
    """A strategy generating contiguous ``[start, stop)`` partitions of ``range(total)``.

    Every drawn value covers ``range(total)`` exactly — the shape the
    parallel backend's chunked work distribution produces — but with
    arbitrary (not necessarily equal) chunk widths, so merge code is
    exercised on every boundary layout, not just the even split.
    """
    import hypothesis.strategies as st

    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    limit = total if max_chunk is None else max_chunk

    @st.composite
    def build(draw):
        cuts = [0]
        while cuts[-1] < total:
            width = draw(st.integers(1, max(1, min(limit, total - cuts[-1]))))
            cuts.append(cuts[-1] + width)
        return [(cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1)]

    return build()


def renamings(protocol: PopulationProtocol, fresh: bool = None):
    """A strategy generating state renamings of ``protocol``.

    Every drawn value is a dict mapping *each* state to a distinct
    target, suitable for :meth:`PopulationProtocol.renamed`.  Two
    flavours are drawn (or forced via ``fresh``):

    * ``fresh=True`` — targets are brand-new names ``r0, r1, ...``
      assigned in a shuffled order, so the renamed protocol shares no
      state names with the original;
    * ``fresh=False`` — targets are a permutation of the existing
      state names, so the renamed protocol lives on the same state set.

    Used by the cache fingerprint, symmetry and minimisation suites:
    any analysis claiming renaming-invariance should survive both.
    """
    import hypothesis.strategies as st

    states = list(protocol.states)

    @st.composite
    def build(draw):
        use_fresh = draw(st.booleans()) if fresh is None else fresh
        shuffled = draw(st.permutations(states))
        if use_fresh:
            return {state: f"r{i}" for i, state in enumerate(shuffled)}
        return dict(zip(states, shuffled))

    return build()


def count_matrices(
    n_states: int,
    max_trials: int = 6,
    max_count: int = 30,
    min_population: int = 0,
):
    """A strategy generating ``(trials, n_states)`` int64 count matrices.

    The struct-of-arrays shape of the vectorised ensemble engine: one
    row per trial, one column per protocol state, non-negative counts.
    Row populations are *not* equalised — per-row predicates (silence,
    consensus verdicts) must hold for arbitrary configurations, and the
    degenerate rows (empty, single-agent, single-state) are exactly the
    ones worth generating.  ``min_population`` filters rows whose total
    falls below it, for properties that need inhabited configurations.
    """
    import hypothesis.strategies as st
    import numpy as np

    if n_states < 1:
        raise ValueError(f"n_states must be >= 1, got {n_states}")

    row = st.lists(
        st.integers(0, max_count), min_size=n_states, max_size=n_states
    ).filter(lambda r: sum(r) >= min_population)

    return st.lists(row, min_size=1, max_size=max_trials).map(
        lambda rows: np.array(rows, dtype=np.int64)
    )


def instrumentation_snapshots(max_entries: int = 4):
    """A strategy generating :class:`InstrumentationSnapshot` values.

    Counter and timer names come from a small shared alphabet so merges
    actually collide; counts stay small non-negative integers, timers
    small non-negative floats.
    """
    import hypothesis.strategies as st

    from .simulation.instrumentation import InstrumentationSnapshot

    names = st.sampled_from(["interactions", "silent_checks", "runs", "steps", "probes"])
    return st.builds(
        InstrumentationSnapshot,
        counters=st.dictionaries(names, st.integers(0, 1000), max_size=max_entries),
        timers=st.dictionaries(
            names,
            st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
            max_size=max_entries,
        ),
    )
