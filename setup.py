"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists
so that ``pip install -e .`` works on environments whose setuptools
predates PEP 660 editable-wheel support (legacy develop installs).
"""

from setuptools import setup

setup()
