#!/usr/bin/env python3
"""Quickstart: define, verify and simulate a population protocol.

This walks the three layers of the library in ~60 lines:

1. **Construct** a protocol — either from the shipped families or by
   hand with the fluent builder.
2. **Verify** it exactly against its predicate (bottom-SCC consensus
   over every input up to a bound).
3. **Simulate** it under the uniform random scheduler and watch the
   interactions that drive it to consensus.

Run:  python examples/quickstart.py
"""

from repro import ProtocolBuilder, binary_threshold, counting, verify_protocol
from repro.simulation import CountScheduler, record_trace

# ----------------------------------------------------------------------
# 1. A shipped construction: x >= 10 with O(log 10) states.
# ----------------------------------------------------------------------
protocol = binary_threshold(10)
print(protocol.describe())
print()

# ----------------------------------------------------------------------
# 2. Exact verification: every input up to 14 agents, every fair
#    execution, the verdict must equal the predicate x >= 10.
# ----------------------------------------------------------------------
report = verify_protocol(protocol, counting(10), max_input_size=14)
report.raise_on_failure()
print(f"verified on {report.inputs_checked} inputs: computes {report.predicate}")
print()

# ----------------------------------------------------------------------
# 3. Simulation: a population of 12 agents decides "are we at least 10?"
# ----------------------------------------------------------------------
result = CountScheduler(protocol, seed=0).run(12, max_steps=100_000)
print(
    f"simulated n=12: converged={result.converged} after "
    f"{result.interactions} interactions "
    f"({result.parallel_time:.1f} parallel time)"
)
print(f"final configuration: {result.configuration.pretty()}")
print(f"consensus output: {protocol.output_of(result.configuration)}")
print()

# ----------------------------------------------------------------------
# 4. Watching a run: the trace of effective interactions.
# ----------------------------------------------------------------------
trace = record_trace(protocol, 11, max_steps=50_000, seed=4)
print(trace.summary(head=8))
print()

# ----------------------------------------------------------------------
# 5. Hand-written protocols via the builder: "is anybody ill?" — a
#    one-way epidemic deciding x_ill >= 1 over two input kinds.
# ----------------------------------------------------------------------
epidemic = (
    ProtocolBuilder("epidemic-detection")
    .state("healthy", output=0)
    .state("ill", output=1)
    .state("alerted", output=1)
    .rule("ill", "healthy", "ill", "alerted")
    .rule("alerted", "healthy", "alerted", "alerted")
    .input("h", "healthy")
    .input("i", "ill")
    .build()
)
from repro.core.predicates import Threshold

is_anybody_ill = Threshold({"i": 1}, 1)
report = verify_protocol(epidemic, is_anybody_ill, max_input_size=7)
print(f"epidemic-detection verified: {report.ok} ({report.inputs_checked} inputs)")
result = CountScheduler(epidemic, seed=1).run({"h": 99, "i": 1}, max_steps=500_000)
print(
    f"1 ill agent among 100: consensus {epidemic.output_of(result.configuration)} "
    f"after {result.parallel_time:.1f} parallel time"
)

# ----------------------------------------------------------------------
# 6. Measure it and remember the numbers: the benchmark ledger runs
#    registered workloads and writes a comparable, schema-versioned
#    artifact (median/MAD timing, peak memory, deterministic work
#    counts).  `python -m repro bench run` is the CLI face of this.
# ----------------------------------------------------------------------
from repro.obs import compare_artifacts, run_suite

artifact = run_suite(
    "micro",
    repeats=2,
    workload_filter=lambda w: w.name == "saturation.sequence",
)
entry = artifact["workloads"]["saturation.sequence"]
print(
    f"ledger: saturation.sequence median {entry['median_s'] * 1e3:.2f}ms, "
    f"peak {entry['peak_kb']:.0f}KB, work {entry['work']}"
)
assert compare_artifacts(artifact, artifact).ok("any")  # self-compare is clean
