#!/usr/bin/env python3
"""Compile a Presburger predicate, inspect its dynamics, export artefacts.

The full tooling loop a protocol designer would use:

1. **compile** — an arbitrary Presburger predicate becomes a protocol
   via the Angluin et al. constructions (`repro.protocols.compiler`);
2. **trim** — drop uncoverable states (the paper's "wlog");
3. **verify** — exact bottom-SCC verification against the predicate;
4. **analyse** — exact expected convergence time from the Markov chain,
   cross-checked against simulation;
5. **watch** — count trajectories as sparklines (the two phases of a
   threshold decision are clearly visible);
6. **export** — JSON for storage, Graphviz DOT for rendering.

Run:  python examples/compile_inspect_export.py
"""

from repro.analysis import expected_convergence_time
from repro.core.predicates import And, Modulo, Threshold
from repro.fmt import section
from repro.io import dumps, to_dot
from repro.protocols import compile_predicate
from repro.simulation import CountScheduler, record_time_series
from repro import verify_protocol

# ----------------------------------------------------------------------
# 1-2. Compile "2x - y >= 2 and x + y even" and trim it.
# ----------------------------------------------------------------------
predicate = And(Threshold({"x": 2, "y": -1}, 2), Modulo({"x": 1, "y": 1}, 0, 2))
protocol = compile_predicate(predicate).restricted_to_coverable()
print(section("Compiled protocol"))
print(f"predicate: {predicate}")
print(f"protocol:  {protocol}")

# ----------------------------------------------------------------------
# 3. Verify exactly.
# ----------------------------------------------------------------------
report = verify_protocol(protocol, predicate, max_input_size=6)
report.raise_on_failure()
print(f"verified exactly on {report.inputs_checked} inputs: OK")

# ----------------------------------------------------------------------
# 4. Exact expected convergence time vs a simulated run.
# ----------------------------------------------------------------------
print(section("Convergence analysis (input x=3, y=1)"))
inputs = {"x": 3, "y": 1}
exact = expected_convergence_time(protocol, inputs)
print(f"exact expected interactions to stabilisation: {exact.interactions:.2f}")
print(f"exact expected parallel time:                 {exact.parallel_time:.2f}")
simulated = CountScheduler(protocol, seed=1).run(inputs, max_steps=100_000)
print(f"one simulated run: {simulated.interactions} interactions "
      f"(verdict {protocol.output_of(simulated.configuration)}, "
      f"predicate says {predicate(inputs)})")

# ----------------------------------------------------------------------
# 5. Watch a larger run converge (threshold protocol, two phases).
# ----------------------------------------------------------------------
print(section("Count trajectories (binary_threshold(8), n = 200)"))
from repro import binary_threshold

watch = binary_threshold(8)
series = record_time_series(watch, 200, max_parallel_time=300, seed=3)
print(series.render(width=64))
print("(inputs combine into powers, then the accepting state sweeps through)")

# ----------------------------------------------------------------------
# 6. Export.
# ----------------------------------------------------------------------
print(section("Exports"))
payload = dumps(protocol)
print(f"JSON: {len(payload)} bytes; round-trips through repro.io.loads")
dot = to_dot(watch)
print(f"DOT:  {dot.count('->')} edges; render with `dot -Tpdf`")
print()
print(dot[:400] + "\n  ...")
