#!/usr/bin/env python3
"""Petri net tour: population protocols inside the general VAS theory.

The paper imports its heavy machinery (Rackoff's theorem, Karp–Miller,
the §4.1 hardness results) from Petri net / Vector Addition System
theory.  This example walks that ambient layer:

1. embed a population protocol as a (conservative) Petri net;
2. analyse a genuinely *non-conservative* net — boundedness,
   coverability, place bounds via Karp–Miller;
3. structural invariants: P-invariants (conserved weighted token
   counts) and T-invariants (Parikh-level cycles);
4. reachability refutations: linear invariants and the state equation
   as automatic unreachability proofs for protocol configurations;
5. the §4.1 quantities on concrete protocols: the `All_1` cut-off and
   the rendez-vous synchronisation profile of footnote 2.

Run:  python examples/petri_net_tour.py
"""

from repro import binary_threshold
from repro.bounds.cutoff import all_one_profile
from repro.bounds.rendezvous import synchronisation_profile
from repro.core.multiset import Multiset
from repro.fmt import render_table, section
from repro.protocols.leaders import leader_unary_threshold
from repro.reachability.state_equation import refute_reachability, t_invariants
from repro.vas import (
    OMEGA,
    NetTransition,
    PetriNet,
    from_protocol,
    is_bounded,
    is_coverable,
    p_invariants,
    place_bounds,
)

# ----------------------------------------------------------------------
# 1. A protocol as a Petri net.
# ----------------------------------------------------------------------
protocol = binary_threshold(8)
net = from_protocol(protocol)
print(section("1. Population protocol -> Petri net"))
print(f"{protocol} -> {net.num_places} places, {net.num_transitions} transitions")
print(f"conservative (token count preserved): {net.is_conservative}")

# ----------------------------------------------------------------------
# 2. A non-conservative, unbounded net: a tiny producer/consumer.
# ----------------------------------------------------------------------
print(section("2. An unbounded net: producer / consumer"))
factory = PetriNet(
    places=("machine", "item", "crate"),
    transitions=(
        NetTransition("produce", Multiset({"machine": 1}), Multiset({"machine": 1, "item": 1})),
        NetTransition("pack", Multiset({"item": 3}), Multiset({"crate": 1})),
    ),
    name="factory",
)
start = Multiset({"machine": 1})
print(factory.describe())
print(f"bounded from {start.pretty()}: {is_bounded(factory, start)}")
bounds = place_bounds(factory, start)
print("place bounds:", {p: ("inf" if b == OMEGA else b) for p, b in bounds.items()})
print(f"coverable: 5 crates at once? {is_coverable(factory, start, Multiset({'crate': 5}))}")

# ----------------------------------------------------------------------
# 3. Structural invariants.
# ----------------------------------------------------------------------
print(section("3. Invariants"))
for weights in p_invariants(net)[:3]:
    shown = {str(p): str(w) for p, w in weights.items() if w != 0}
    print(f"P-invariant of the protocol net: {shown}")
cycles = t_invariants(protocol)
print(f"T-invariants of the protocol (Parikh-level cycles): {len(cycles)}")

# ----------------------------------------------------------------------
# 4. Automatic unreachability proofs.
# ----------------------------------------------------------------------
print(section("4. Reachability refutation"))
queries = [
    (Multiset({"2^0": 4}), Multiset({"2^0": 5})),
    (Multiset({"2^0": 4}), Multiset({"2^1": 4})),
    (Multiset({"2^0": 4}), Multiset({"2^1": 2, "zero": 2})),
]
for source, target in queries:
    reason = refute_reachability(protocol, source, target)
    verdict = reason if reason else "no linear/state-equation obstruction (may be reachable)"
    print(f"{source.pretty()} ->* {target.pretty()} ?  {verdict}")

# ----------------------------------------------------------------------
# 5. The §4.1 quantities.
# ----------------------------------------------------------------------
print(section("5. §4.1 cut-offs on concrete protocols"))
profile = all_one_profile(binary_threshold(5), max_input=8, min_input=2)
rows = [[i, "yes" if ok else "no"] for i, ok in sorted(profile.items())]
print("All_1 reachability for binary_threshold(5):")
print(render_table(["input i", "IC(i) ->* All_1?"], rows))

leader = leader_unary_threshold(3)
sync = synchronisation_profile(leader, "L0", "u", "T", "T", max_n=6)
rows = [[n, "yes" if ok else "no"] for n, ok in sorted(sync.items())]
print()
print("rendez-vous profile for leader_unary_threshold(3) (L0,n*u) ->* (T,n*T):")
print(render_table(["n", "possible?"], rows))
print()
print("The hardness results of [15, 16, 22, 23] say these flips can be pushed")
print("beyond any elementary function of the state count — for protocols with")
print("leaders.  Leaderless, they stay 2^O(n) [10]: the paper's §4.1 split.")
