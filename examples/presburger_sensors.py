#!/usr/bin/env python3
"""Sensor-network scenario: compound Presburger predicates by combinators.

The original motivation for population protocols [5, 6]: networks of
passively mobile sensors with tiny memory.  A flock of temperature
sensors should raise an alarm iff

    at least 5 sensors report "hot"   AND   the number of reporting
    sensors is even (a parity handshake that rules out a known
    single-sensor fault mode).

Thresholds and modulo predicates generate all Presburger predicates
under boolean combinations; this example builds the compound protocol
with the product combinator, verifies it exactly, and simulates a
sensor deployment.

Run:  python examples/presburger_sensors.py
"""

from repro import counting, verify_protocol
from repro.core.predicates import And, Modulo, Not, Or
from repro.fmt import render_table, section
from repro.protocols import binary_threshold, conjunction, disjunction, modulo_protocol, negation
from repro.simulation import CountScheduler

# ----------------------------------------------------------------------
# Build: (x >= 5) and (x = 0 mod 2)
# ----------------------------------------------------------------------
hot_threshold = binary_threshold(5)
parity = modulo_protocol({"x": 1}, 0, 2)
alarm = conjunction(hot_threshold, parity)
alarm_predicate = And(counting(5), Modulo({"x": 1}, 0, 2))

print(section("The alarm protocol"))
print(f"threshold component: {hot_threshold.num_states} states")
print(f"parity component:    {parity.num_states} states")
print(f"product protocol:    {alarm.num_states} states, {alarm.num_transitions} transitions")
print(f"predicate:           {alarm_predicate}")

# ----------------------------------------------------------------------
# Verify exactly on all deployments up to 10 sensors.
# ----------------------------------------------------------------------
report = verify_protocol(alarm, alarm_predicate, max_input_size=10)
report.raise_on_failure()
print(f"verified exactly on {report.inputs_checked} deployment sizes: OK")

# ----------------------------------------------------------------------
# Simulate deployments.
# ----------------------------------------------------------------------
print(section("Simulated deployments"))
rows = []
for sensors in (4, 5, 6, 7, 8, 12):
    result = CountScheduler(alarm, seed=11).run(sensors, max_steps=500_000)
    verdict = alarm.output_of(result.configuration)
    rows.append(
        [
            sensors,
            alarm_predicate(sensors),
            verdict == 1,
            f"{result.parallel_time:.1f}",
        ]
    )
print(render_table(["sensors", "predicate", "alarm raised", "parallel time"], rows))

# ----------------------------------------------------------------------
# More combinators: negation and disjunction.
# ----------------------------------------------------------------------
print(section("Derived predicates"))
quiet = negation(alarm)  # "no alarm condition"
report = verify_protocol(quiet, Not(alarm_predicate), max_input_size=9)
print(f"negation verified: {report.ok}")

either = disjunction(binary_threshold(7), modulo_protocol({"x": 1}, 0, 3))
either_predicate = Or(counting(7), Modulo({"x": 1}, 0, 3))
report = verify_protocol(either, either_predicate, max_input_size=9)
print(f"disjunction ((x>=7) or (x=0 mod 3)) verified: {report.ok} "
      f"({either.num_states} states)")
print()
print("Every Presburger predicate decomposes into threshold/modulo atoms")
print("combined this way — with the product construction paying a")
print("multiplicative state cost per combinator, another face of the")
print("state-complexity question the paper studies.")
