#!/usr/bin/env python3
"""Chemical-scale simulation: a million molecules deciding a threshold.

Population protocols are chemical reaction networks: agents are
molecules, states are species, interactions are bimolecular reactions.
The paper's motivation for *few states* is exactly that each state is a
chemical species that must be engineered.

This example exercises the simulation ladder on populations far beyond
what naive agent-list simulation can handle:

* ``AgentListScheduler`` — the textbook implementation (baseline);
* ``CountScheduler``     — exact, O(|Q|) per interaction;
* ``BatchScheduler``     — tau-leaping: thousands of interactions per
  numpy step, the only one that reaches n = 10^6 in seconds.

Run:  python examples/chemical_scale_simulation.py
"""

import time

from repro import binary_threshold, majority_protocol
from repro.fmt import render_table, section
from repro.simulation import AgentListScheduler, BatchScheduler, CountScheduler

# ----------------------------------------------------------------------
# The detection system: "are at least 8 signal molecules present?"
# ----------------------------------------------------------------------
protocol = binary_threshold(8)
print(f"reaction network: {protocol.num_states} species, {protocol.num_transitions} reactions")
print("(each transition p, q -> p', q' is the bimolecular reaction p + q -> p' + q')")

# ----------------------------------------------------------------------
# Throughput ladder.
# ----------------------------------------------------------------------
print(section("Simulator ladder: time to consensus by population size"))
rows = []
for n in (100, 1_000, 10_000):
    t0 = time.perf_counter()
    result = AgentListScheduler(protocol, seed=0).run(n, max_steps=40 * n)
    t_list = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = CountScheduler(protocol, seed=0).run(n, max_steps=40 * n)
    t_count = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = BatchScheduler(protocol, seed=0, epsilon=0.05).run(n, max_parallel_time=40)
    t_batch = time.perf_counter() - t0
    rows.append([n, f"{t_list:.3f}s", f"{t_count:.3f}s", f"{t_batch:.3f}s"])
print(render_table(["n", "agent list", "count-based", "batch (tau-leap)"], rows))

# ----------------------------------------------------------------------
# The headline run: one million molecules.
# ----------------------------------------------------------------------
print(section("n = 1,000,000 molecules (batch simulator only)"))
t0 = time.perf_counter()
scheduler = BatchScheduler(protocol, seed=7, epsilon=0.05)
result = scheduler.run(1_000_000, max_parallel_time=60)
elapsed = time.perf_counter() - t0
print(f"converged: {result.converged} in {result.parallel_time:.1f} units of parallel time")
print(f"final consensus: {protocol.output_of(result.configuration)} (1,000,000 >= 8)")
print(f"wall clock: {elapsed:.2f}s for {result.interactions:,} simulated interactions")
print(f"throughput: {result.interactions / max(elapsed, 1e-9):,.0f} interactions/second")

# ----------------------------------------------------------------------
# Chemical majority: which of two species is more abundant?
# ----------------------------------------------------------------------
print(section("Chemical majority at n = 100,000 (clear margin)"))
m = majority_protocol()
t0 = time.perf_counter()
result = BatchScheduler(m, seed=3, epsilon=0.05).run(
    {"x": 80_000, "y": 20_000}, max_parallel_time=200
)
elapsed = time.perf_counter() - t0
print(f"80k x-molecules vs 20k y-molecules -> consensus {m.output_of(result.configuration)}")
print(f"({result.parallel_time:.1f} parallel time, {elapsed:.2f}s wall clock)")
print()
print("Note: the 4-state majority protocol is exponentially slow on *narrow*")
print("margins (its follower tug-of-war is a biased random walk); fast majority")
print("needs many more states [7] — the very trade-off the paper studies.")
