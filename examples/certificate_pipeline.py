#!/usr/bin/env python3
"""The paper's proofs, executed: pumping certificates for a real protocol.

Walks the two upper-bound arguments of the paper on the concrete
protocol ``binary_threshold(4)`` (the paper's ``P'_2``), printing every
intermediate object:

* **Section 5 route** (leaderless): Lemma 5.4 saturation, Lemma 5.5
  concentration, Corollary 5.7 Hilbert basis, and the final Lemma 5.2
  certificate proving ``eta <= a``;
* **Section 4 route** (works with leaders too): the Lemma 4.2 stable
  sequence ``C_2, C_3, ...``, Dickson's ordered pair, and the Lemma 4.1
  certificate.

Every certificate is *checked*: the recorded firing sequences are
re-fired and all side conditions re-verified.

Run:  python examples/certificate_pipeline.py
"""

from repro import binary_threshold, leader_unary_threshold
from repro.analysis import infer_basis, saturation_sequence
from repro.analysis.concentration import best_concentration
from repro.bounds import (
    build_stable_sequence,
    log2_theorem_5_9_final,
    section4_certificate,
    section5_certificate,
    xi,
)
from repro.fmt import section
from repro.reachability import realisable_basis
from repro.wqo.dickson import first_ordered_pair

protocol = binary_threshold(4)
print(protocol.describe())

# ----------------------------------------------------------------------
# Section 5 route, stage by stage.
# ----------------------------------------------------------------------
print(section("Stage 1 — Lemma 5.4: saturation"))
sat = saturation_sequence(protocol)
print(f"IC({sat.input_size}) reaches the 1-saturated configuration {sat.configuration.pretty()}")
print(f"via a sequence of length {sat.sequence.length} (bound: 3^n = {3**protocol.num_states})")
print(f"re-fired and checked: {sat.verify(protocol)}")

print(section("Stage 2 — Lemma 5.5: concentrated stable configurations"))
basis = infer_basis(protocol, b=0, slice_sizes=[2, 3, 4]) + infer_basis(
    protocol, b=1, slice_sizes=[2, 3, 4]
)
for inputs in (5, 7, 9):
    witness = best_concentration(protocol, inputs, basis)
    print(
        f"IC({inputs}) reaches stable {witness.configuration.pretty()} "
        f"in basis element {witness.element} with epsilon = {witness.epsilon}"
    )

print(section("Stage 3 — Corollary 5.7: Hilbert basis of realisable multisets"))
elements = realisable_basis(protocol)
print(f"{len(elements)} basis elements; Pottier bound |pi| <= xi/2 = {xi(protocol) // 2}")
for element in elements:
    print(f"  |pi|={element.size}  i={element.input_size}  C={element.configuration.pretty()}")

print(section("Stage 4 — Lemma 5.2: the saturation certificate"))
certificate = section5_certificate(protocol, max_input=14)
report = certificate.check()
print(f"a = {certificate.a}, b = {certificate.b}, pi = {certificate.pi.pretty()}")
print(f"B = {certificate.B.pretty()}, S = {sorted(map(str, certificate.S))}")
print(f"=> {report.conclusion}")
for note in report.notes:
    print(f"   ({note})")
print(
    f"paper's worst-case a for n = {protocol.num_states}: "
    f"2^((2n+2)!) = 2^{log2_theorem_5_9_final(protocol.num_states)}"
)

# ----------------------------------------------------------------------
# Section 4 route (also valid with leaders).
# ----------------------------------------------------------------------
print(section("Section 4 route — Lemma 4.2 sequence + Dickson + Lemma 4.1"))
sequence = build_stable_sequence(protocol, length=10)
print("stable sequence C_2, C_3, ...:")
for position, config in enumerate(sequence.configurations[:6]):
    print(f"  C_{sequence.input_of(position)} = {config.pretty()}")
pair = first_ordered_pair([c.to_vector(protocol.states) for c in sequence.configurations])
print(f"Dickson's ordered pair at positions {pair}: "
      f"C_{sequence.input_of(pair[0])} <= C_{sequence.input_of(pair[1])}")

certificate4 = section4_certificate(protocol, max_length=14)
report4 = certificate4.check()
print(f"=> {report4.conclusion}  (true threshold of this protocol: 4)")

print(section("Section 4 with leaders"))
leader_protocol = leader_unary_threshold(3)
certificate_leader = section4_certificate(leader_protocol, max_length=12)
report_leader = certificate_leader.check()
print(f"{leader_protocol.name}: {report_leader.conclusion}  (true threshold: 3)")
print()
print("Note how Section 4 applies to the leader protocol while Section 5's")
print("machinery (saturation, IC-linearity) is leaderless-only — exactly the")
print("split in the paper's results.")
