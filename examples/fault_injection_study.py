#!/usr/bin/env python3
"""Fault injection: how population protocols fail (and when they don't).

Population protocols run on fragile substrates — sensor motes die,
molecules degrade.  The model's guarantees assume a fixed population,
so the engineering question is empirical: which faults does a protocol
absorb, and which flip its answer?  This study injects crashes and
state corruption into threshold and majority decisions:

1. crashes *before* the decision change the question itself
   (the surviving population is smaller);
2. crashes *after* the accepting epidemic are harmless
   (acceptance is absorbing);
3. a single corrupted agent can forge acceptance — the false-positive
   risk that motivates self-stabilising designs;
4. majority with a wide margin absorbs substantial minority crashes.

Run:  python examples/fault_injection_study.py
"""

from repro import binary_threshold, majority_protocol
from repro.fmt import render_table, section
from repro.simulation import corrupt, crash, run_with_faults

threshold = binary_threshold(8)

# ----------------------------------------------------------------------
# 1. Early crashes change the effective input.
# ----------------------------------------------------------------------
print(section("1. Early crashes shrink the population below the threshold"))
rows = []
for crashed in (0, 2, 4, 6):
    result = run_with_faults(
        threshold, 12, [crash(0, count=crashed, state="2^0")] if crashed else [],
        seed=1, max_steps=400_000,
    )
    rows.append(
        [crashed, result.survivors, result.verdict,
         "correct for survivors" if result.verdict == (1 if result.survivors >= 8 else 0)
         else "WRONG"]
    )
print(render_table(["crashed at t=0", "survivors", "verdict", "assessment"], rows))

# ----------------------------------------------------------------------
# 2. Late crashes are harmless: acceptance is absorbing.
# ----------------------------------------------------------------------
print(section("2. Crashes after the epidemic cannot undo acceptance"))
late = run_with_faults(threshold, 12, [crash(300_000, count=4)], seed=2, max_steps=400_000)
print(f"12 agents decide x >= 8 -> verdict {late.verdict}; "
      f"4 late crashes leave {late.survivors} agents, verdict still {late.verdict}")

# ----------------------------------------------------------------------
# 3. One corrupted agent forges acceptance.
# ----------------------------------------------------------------------
print(section("3. A single corruption can forge the answer"))
forged = run_with_faults(
    threshold, 5, [corrupt(0, target_state="2^3")], seed=3, max_steps=400_000
)
print(f"5 agents (5 < 8, should reject); one agent corrupted to the top power:")
print(f"  verdict = {forged.verdict}  <- a false positive caused by one bad agent")
print("  (the accepting state is a one-way epidemic; nothing audits it)")

# ----------------------------------------------------------------------
# 4. Majority absorbs minority crashes on wide margins.
# ----------------------------------------------------------------------
print(section("4. Wide-margin majority under minority crashes"))
majority = majority_protocol()
rows = []
for crashed in (0, 5, 10, 15):
    result = run_with_faults(
        majority, {"x": 60, "y": 20},
        [crash(0, count=crashed, state="A")] if crashed else [],
        seed=4, max_steps=2_000_000,
    )
    rows.append([crashed, result.survivors, result.verdict])
print(render_table(["x-agents crashed", "survivors", "verdict (1 = x wins)"], rows))
print()
print("Crashing 15 of 60 x-supporters still leaves 45 > 20: the answer holds.")
print("The fragility is asymmetric: corruption of one *accepting* agent is")
print("fatal, while crashes merely re-pose the question to the survivors.")
