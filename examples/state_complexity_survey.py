#!/usr/bin/env python3
"""State complexity survey: the paper's landscape on one screen.

Reproduces, as runnable tables:

* Example 2.1 — the flat family ``P_k`` (2^k + 1 states) against the
  binary family ``P'_k`` (k + 2 states), both verified exactly;
* Theorem 2.2 — verified busy-beaver witnesses: the largest threshold
  our constructions reach with each state budget;
* Theorems 4.5 / 5.9 — the upper-bound side: ``log2`` of the paper's
  leaderless bound ``2^((2n+2)!)`` next to the witnessed lower bound,
  making the open gap of the paper's conclusion concrete.

Run:  python examples/state_complexity_survey.py
"""

from repro import counting, example_2_1_binary, example_2_1_flat, verify_protocol
from repro.bounds import best_leaderless_witness, gap_table, log2_beta, xi
from repro.fmt import render_table, section

# ----------------------------------------------------------------------
# Example 2.1: the succinctness gap, verified.
# ----------------------------------------------------------------------
print(section("Example 2.1 — flat P_k vs binary P'_k (both verified)"))
rows = []
for k in range(1, 5):
    eta = 2**k
    flat = example_2_1_flat(k)
    binary = example_2_1_binary(k)
    flat_ok = verify_protocol(flat, counting(eta), max_input_size=eta + 2).ok
    binary_ok = verify_protocol(binary, counting(eta), max_input_size=eta + 2).ok
    rows.append(
        [k, eta, flat.num_states, "yes" if flat_ok else "NO",
         binary.num_states, "yes" if binary_ok else "NO"]
    )
print(render_table(["k", "eta=2^k", "|P_k|", "verified", "|P'_k|", "verified"], rows))

# ----------------------------------------------------------------------
# Theorem 2.2 witnesses: BB(n) >= 2^(n-2).
# ----------------------------------------------------------------------
print(section("Busy beaver lower-bound witnesses (Theorem 2.2, leaderless)"))
rows = []
for n in range(3, 9):
    protocol, eta = best_leaderless_witness(n)
    verified = "yes" if eta <= 64 and verify_protocol(
        protocol, counting(eta), max_input_size=eta + 2
    ).ok else ("yes" if eta <= 64 else "(too large to sweep)")
    rows.append([n, eta, protocol.name, verified])
print(render_table(["states n", "eta witnessed", "witness", "verified"], rows))

# ----------------------------------------------------------------------
# The gap: witnessed lower bound vs Theorem 5.9 upper bound.
# ----------------------------------------------------------------------
print(section("The gap (experiment E8): log2 BB(n) between n-2 and (2n+2)!"))
rows = []
for row in gap_table(range(3, 9)):
    rows.append(
        [row.n, row.lower_eta, row.lower_eta.bit_length() - 1, row.log2_upper]
    )
print(render_table(["n", "lower eta", "log2 lower", "log2 upper = (2n+2)!"], rows))

print()
print("Constants for a concrete protocol (binary_threshold(4), n = 4):")
protocol = example_2_1_binary(2)
print(f"  Pottier constant xi           = {xi(protocol)}")
print(f"  log2 of small-basis beta(4)   = {log2_beta(4)}  (the number itself has ~10^5 digits)")
print()
print("Reading: the verified lower bound grows like 2^n; the paper's upper")
print("bound grows like 2^((2n+2)!).  Closing this gap is the open problem")
print("stated in the paper's conclusion.")
